# Header-hygiene check, part 2: the public-facing consumers — every example
# and every tool binary (opaq_cli, opaq_noded, ...) — must compile against
# the include/opaq/ facade ONLY. Any quoted include of an internal src/
# layer (core/..., io/..., util/..., ...) fails the build with a pointer at
# the offending line.
#
# Run as:  cmake -DREPO_ROOT=<repo> -P cmake/check_public_includes.cmake

if(NOT DEFINED REPO_ROOT)
  message(FATAL_ERROR "pass -DREPO_ROOT=<repository root>")
endif()

file(GLOB consumers
     ${REPO_ROOT}/examples/*.cpp
     ${REPO_ROOT}/src/tools/*.cc)

set(violations "")
foreach(source IN LISTS consumers)
  file(STRINGS ${source} includes REGEX "^[ \t]*#[ \t]*include[ \t]*\"")
  foreach(line IN LISTS includes)
    string(REGEX MATCH "\"([^\"]+)\"" _ "${line}")
    set(path "${CMAKE_MATCH_1}")
    if(NOT path MATCHES "^opaq/")
      file(RELATIVE_PATH rel ${REPO_ROOT} ${source})
      string(APPEND violations
             "  ${rel}: #include \"${path}\" (use the opaq/ facade)\n")
    endif()
  endforeach()
endforeach()

if(violations)
  message(FATAL_ERROR
          "public-surface consumers include internal headers:\n${violations}"
          "Examples and the src/tools binaries must include only "
          "\"opaq/...\" headers.")
endif()
