// Tests for the streaming ingest subsystem (src/ingest): LiveDataset
// durability and crash recovery, LiveDatasetReader over mixed plain/packed
// segments, QuerySession::Absorb incremental refresh (byte-identical to a
// from-scratch rebuild), wire-v5 remote appends, the QueryServer refresher
// path under concurrent queries (the TSan row), and WindowedSession's
// time-windowed ring.

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <fstream>
#include <memory>
#include <thread>
#include <vector>

#include "core/sketch_io.h"
#include "data/dataset.h"
#include "ingest/live_dataset.h"
#include "ingest/windowed_session.h"
#include "io/block_device.h"
#include "io/tempdir.h"
#include "net/client.h"
#include "net/node_server.h"
#include "net/query_client.h"
#include "net/query_server.h"
#include "net/remote_source.h"
#include "net/wire_query.h"
#include "opaq/engine.h"
#include "opaq/query.h"
#include "opaq/source.h"
#include "util/check.h"

namespace opaq {
namespace {

using Key = uint64_t;
using Request = QueryRequest<Key>;

OpaqConfig SmallConfig() {
  OpaqConfig config;
  config.run_size = 1000;
  config.samples_per_run = 100;
  return config;
}

std::vector<Key> Batch(uint64_t n, uint64_t seed) {
  DatasetSpec spec;
  spec.n = n;
  spec.seed = seed;
  spec.distribution = Distribution::kUniform;
  return GenerateDataset<Key>(spec);
}

std::vector<uint8_t> ListBytes(const SampleList<Key>& list) {
  MemoryBlockDevice out;
  OPAQ_CHECK_OK(SaveSampleList(list, &out));
  auto size = out.Size();
  OPAQ_CHECK_OK(size.status());
  std::vector<uint8_t> bytes(*size);
  OPAQ_CHECK_OK(out.ReadAt(0, bytes.data(), bytes.size()));
  return bytes;
}

uint64_t FileSize(const std::string& path) {
  struct stat st;
  OPAQ_CHECK(::stat(path.c_str(), &st) == 0);
  return static_cast<uint64_t>(st.st_size);
}

// ------------------------------------------------------------ round trip --

TEST(LiveDatasetTest, AppendAndReadBackAcrossReopen) {
  auto tmp = TempDir::Make("opaq-ingest");
  ASSERT_TRUE(tmp.ok());
  const std::string dir = tmp->FilePath("live");

  std::vector<Key> all;
  {
    auto live = LiveDataset<Key>::Create(dir);
    ASSERT_TRUE(live.ok()) << live.status().ToString();
    for (uint64_t seed : {1u, 2u}) {
      auto batch = Batch(1000 + seed * 777, seed);
      ASSERT_TRUE(live->Append(batch).ok());
      all.insert(all.end(), batch.begin(), batch.end());
    }
    EXPECT_EQ(live->total_elements(), all.size());
    EXPECT_EQ(live->num_segments(), 2u);
  }
  // Reopen the writer (crash-restart shape) and keep appending.
  {
    auto live = LiveDataset<Key>::Open(dir);
    ASSERT_TRUE(live.ok()) << live.status().ToString();
    EXPECT_EQ(live->total_elements(), all.size());
    auto batch = Batch(1, 3);  // single-element segment
    ASSERT_TRUE(live->Append(batch).ok());
    all.insert(all.end(), batch.begin(), batch.end());
    EXPECT_EQ(live->num_segments(), 3u);
  }

  auto reader = LiveDatasetReader<Key>::Open(dir);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->size(), all.size());
  EXPECT_EQ(reader->num_segments(), 3u);
  std::vector<Key> read(all.size());
  ASSERT_TRUE(reader->Read(0, read.size(), read.data()).ok());
  EXPECT_EQ(read, all);

  // Offset reads spanning segment boundaries, and past-end rejection.
  std::vector<Key> mid(500);
  ASSERT_TRUE(reader->Read(1500, mid.size(), mid.data()).ok());
  EXPECT_EQ(mid, std::vector<Key>(all.begin() + 1500, all.begin() + 2000));
  Key one;
  EXPECT_EQ(reader->Read(all.size(), 1, &one).code(),
            StatusCode::kOutOfRange);
}

TEST(LiveDatasetTest, PackedAndPlainSegmentsMixFreely) {
  auto tmp = TempDir::Make("opaq-ingest");
  ASSERT_TRUE(tmp.ok());
  const std::string dir = tmp->FilePath("live");

  std::vector<Key> all;
  {
    auto live = LiveDataset<Key>::Create(dir);
    ASSERT_TRUE(live.ok());
    auto batch = Batch(3000, 10);
    ASSERT_TRUE(live->Append(batch).ok());
    all.insert(all.end(), batch.begin(), batch.end());
  }
  {
    LiveDatasetOptions options;
    options.pack = true;
    options.codec = ExtentCodec::kDelta;
    options.extent_elements = 512;
    auto live = LiveDataset<Key>::Open(dir, options);
    ASSERT_TRUE(live.ok());
    auto batch = Batch(2500, 11);
    ASSERT_TRUE(live->Append(batch).ok());
    all.insert(all.end(), batch.begin(), batch.end());
  }

  auto reader = LiveDatasetReader<Key>::Open(dir);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  ASSERT_EQ(reader->size(), all.size());
  std::vector<Key> read(all.size());
  ASSERT_TRUE(reader->Read(0, read.size(), read.data()).ok());
  EXPECT_EQ(read, all);

  // The packed segment is marked in the manifest.
  auto info = ReadLiveManifestInfo(dir);
  ASSERT_TRUE(info.ok());
  ASSERT_EQ(info->records.size(), 2u);
  EXPECT_EQ(info->records[0].flags & LiveManifestRecord::kFlagPacked, 0u);
  EXPECT_EQ(info->records[1].flags & LiveManifestRecord::kFlagPacked,
            LiveManifestRecord::kFlagPacked);
}

TEST(LiveDatasetTest, CreateOpenContractErrors) {
  auto tmp = TempDir::Make("opaq-ingest");
  ASSERT_TRUE(tmp.ok());
  const std::string dir = tmp->FilePath("live");
  EXPECT_EQ(LiveDataset<Key>::Open(dir).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(LiveDatasetReader<Key>::Open(dir).status().code(),
            StatusCode::kNotFound);
  auto live = LiveDataset<Key>::Create(dir);
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(LiveDataset<Key>::Create(dir).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_FALSE(live->Append({}).ok());  // empty batches are refused
  // A different key type must be rejected, not misread.
  EXPECT_EQ(LiveDataset<uint32_t>::Open(dir).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(LiveDatasetReader<uint32_t>::Open(dir).status().code(),
            StatusCode::kInvalidArgument);
}

// ------------------------------------------------- incremental refresh ----

TEST(AbsorbTest, AbsorbMatchesFromScratchRebuildByteIdentically) {
  auto tmp = TempDir::Make("opaq-ingest");
  ASSERT_TRUE(tmp.ok());
  const std::string dir = tmp->FilePath("live");
  const OpaqConfig config = SmallConfig();

  // Deliberately ragged segments: raggedness is fine because Absorb always
  // starts the delta on a segment boundary, and live segments chunk into
  // runs independently.
  auto live = LiveDataset<Key>::Create(dir);
  ASSERT_TRUE(live.ok());
  ASSERT_TRUE(live->Append(Batch(3000, 21)).ok());
  ASSERT_TRUE(live->Append(Batch(1234, 22)).ok());

  auto base_source = Source<Key>::OpenLive(dir);
  ASSERT_TRUE(base_source.ok()) << base_source.status().ToString();
  auto session = Engine<Key>(config, *base_source).Build();
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  const uint64_t have = session->total_elements();
  ASSERT_EQ(have, 4234u);

  // New segments land while the session is serving.
  ASSERT_TRUE(live->Append(Batch(2000, 23)).ok());
  ASSERT_TRUE(live->Append(Batch(567, 24)).ok());

  // Incremental path: sketch ONLY the tail, merge into the session.
  auto tail = Source<Key>::OpenLive(dir, have);
  ASSERT_TRUE(tail.ok()) << tail.status().ToString();
  auto delta = Engine<Key>(config, *tail).Build();
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  QuerySession<Key> absorbed = std::move(session).value();
  ASSERT_TRUE(absorbed.Absorb(delta->sample_list()).ok());
  EXPECT_EQ(absorbed.total_elements(), 6801u);

  // From-scratch path over the same live dataset.
  auto full_source = Source<Key>::OpenLive(dir);
  ASSERT_TRUE(full_source.ok());
  auto rebuilt = Engine<Key>(config, *full_source).Build();
  ASSERT_TRUE(rebuilt.ok());

  EXPECT_EQ(ListBytes(absorbed.sample_list()),
            ListBytes(rebuilt->sample_list()))
      << "Absorb(delta) must be byte-identical to a full rebuild";

  // And the absorbed session answers queries (same answers as the rebuild).
  std::vector<Request> batch = {Request::Quantile(0.5),
                                Request::EquiQuantiles(4)};
  auto a = absorbed.Query({batch.data(), batch.size()});
  auto b = rebuilt->Query({batch.data(), batch.size()});
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->results.size(), b->results.size());
  for (size_t i = 0; i < a->results.size(); ++i) {
    ASSERT_EQ(a->results[i].estimates.size(),
              b->results[i].estimates.size());
    for (size_t j = 0; j < a->results[i].estimates.size(); ++j) {
      EXPECT_EQ(a->results[i].estimates[j].lower,
                b->results[i].estimates[j].lower);
      EXPECT_EQ(a->results[i].estimates[j].upper,
                b->results[i].estimates[j].upper);
    }
  }
}

TEST(AbsorbTest, EmptyDeltaIsANoOpAndMismatchedSubrunRejected) {
  const OpaqConfig config = SmallConfig();
  auto data = Batch(5000, 31);
  auto session =
      Engine<Key>(config, Source<Key>::FromVector(data)).Build();
  ASSERT_TRUE(session.ok());
  auto before = ListBytes(session->sample_list());
  ASSERT_TRUE(session->Absorb(SampleList<Key>()).ok());
  EXPECT_EQ(ListBytes(session->sample_list()), before);

  // A delta sketched at a different sub-run size cannot merge.
  OpaqConfig other = config;
  other.run_size = 500;  // sub-run 5, not 10
  auto delta = Engine<Key>(other, Source<Key>::FromVector(data)).Build();
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(session->Absorb(delta->sample_list()).code(),
            StatusCode::kInvalidArgument);
}

// ------------------------------------------------------ crash recovery ----

TEST(LiveManifestTest, TruncationAtEveryLengthRecoversLongestValidPrefix) {
  auto tmp = TempDir::Make("opaq-ingest");
  ASSERT_TRUE(tmp.ok());
  const std::string dir = tmp->FilePath("live");
  const uint64_t seg_sizes[] = {40, 20, 30};
  {
    auto live = LiveDataset<Key>::Create(dir);
    ASSERT_TRUE(live.ok());
    uint64_t seed = 1;
    for (uint64_t n : seg_sizes) {
      ASSERT_TRUE(live->Append(Batch(n, seed++)).ok());
    }
  }
  const std::string manifest = dir + "/MANIFEST";
  const uint64_t full = FileSize(manifest);
  ASSERT_EQ(full, sizeof(LiveManifestHeader) + 3 * sizeof(LiveManifestRecord));

  // Truncate downward through EVERY byte length — each is a state a
  // crashed writer could leave — and assert the reader sees exactly the
  // whole-record durable prefix, never an error past the header.
  for (uint64_t len = full; len + 1 > 0; --len) {
    ASSERT_EQ(::truncate(manifest.c_str(), static_cast<off_t>(len)), 0);
    auto info = ReadLiveManifestInfo(dir);
    if (len < sizeof(LiveManifestHeader)) {
      EXPECT_FALSE(info.ok()) << "len=" << len;
      continue;
    }
    ASSERT_TRUE(info.ok()) << "len=" << len << ": "
                           << info.status().ToString();
    const size_t expect_records =
        (len - sizeof(LiveManifestHeader)) / sizeof(LiveManifestRecord);
    EXPECT_EQ(info->records.size(), expect_records) << "len=" << len;
    uint64_t expect_total = 0;
    for (size_t i = 0; i < expect_records; ++i) expect_total += seg_sizes[i];
    EXPECT_EQ(info->total_elements, expect_total) << "len=" << len;
    // The reader opens the recovered prefix (segment files are intact).
    auto reader = LiveDatasetReader<Key>::Open(dir);
    ASSERT_TRUE(reader.ok()) << "len=" << len;
    EXPECT_EQ(reader->size(), expect_total) << "len=" << len;
  }
}

TEST(LiveManifestTest, CorruptRecordStopsThePrefixStickily) {
  auto tmp = TempDir::Make("opaq-ingest");
  ASSERT_TRUE(tmp.ok());
  const std::string dir = tmp->FilePath("live");
  {
    auto live = LiveDataset<Key>::Create(dir);
    ASSERT_TRUE(live.ok());
    ASSERT_TRUE(live->Append(Batch(10, 1)).ok());
    ASSERT_TRUE(live->Append(Batch(20, 2)).ok());
    ASSERT_TRUE(live->Append(Batch(30, 3)).ok());
  }
  // Flip one byte inside record #2's element_count: its CRC no longer
  // matches, so records #2 AND #3 (valid but past the tear) are dropped.
  const std::string manifest = dir + "/MANIFEST";
  {
    std::fstream f(manifest,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(static_cast<std::streamoff>(sizeof(LiveManifestHeader) +
                                        sizeof(LiveManifestRecord) + 3));
    char byte = 0x5A;
    f.write(&byte, 1);
  }
  auto info = ReadLiveManifestInfo(dir);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->records.size(), 1u);
  EXPECT_EQ(info->total_elements, 10u);
  auto reader = LiveDatasetReader<Key>::Open(dir);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->size(), 10u);
}

TEST(LiveManifestTest, OrphanSegmentAndTornTailAreInvisible) {
  auto tmp = TempDir::Make("opaq-ingest");
  ASSERT_TRUE(tmp.ok());
  const std::string dir = tmp->FilePath("live");
  {
    auto live = LiveDataset<Key>::Create(dir);
    ASSERT_TRUE(live.ok());
    ASSERT_TRUE(live->Append(Batch(100, 1)).ok());
  }
  // A crashed writer that died between segment fsync and manifest append
  // leaves an orphan segment file with no record: invisible.
  {
    std::ofstream orphan(dir + "/" + LiveSegmentFileName(2),
                         std::ios::binary);
    orphan << "half-written garbage";
  }
  // ...or a torn (partial) manifest record: also invisible.
  {
    std::ofstream torn(dir + "/MANIFEST",
                       std::ios::binary | std::ios::app);
    const char garbage[13] = "torn-record!";
    torn.write(garbage, sizeof(garbage));
  }
  auto reader = LiveDatasetReader<Key>::Open(dir);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->size(), 100u);
  EXPECT_EQ(reader->num_segments(), 1u);

  // The next writer reuses the orphan's slot: append proceeds normally and
  // the new segment is the one the manifest names.
  auto live = LiveDataset<Key>::Open(dir);
  ASSERT_TRUE(live.ok()) << live.status().ToString();
  ASSERT_TRUE(live->Append(Batch(50, 9)).ok());
  auto reopened = LiveDatasetReader<Key>::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->size(), 150u);
  std::vector<Key> read(150);
  EXPECT_TRUE(reopened->Read(0, 150, read.data()).ok());
}

TEST(LiveDatasetReaderTest, SegmentShorterThanItsRecordFailsOpen) {
  auto tmp = TempDir::Make("opaq-ingest");
  ASSERT_TRUE(tmp.ok());
  const std::string dir = tmp->FilePath("live");
  {
    auto live = LiveDataset<Key>::Create(dir);
    ASSERT_TRUE(live.ok());
    ASSERT_TRUE(live->Append(Batch(1000, 1)).ok());
  }
  const std::string seg = dir + "/" + LiveSegmentFileName(1);
  // Chop data off the END of the segment (the header stays valid, the
  // element count it promises does not): Open must refuse loudly rather
  // than serve a silently shorter dataset.
  ASSERT_EQ(::truncate(seg.c_str(),
                       static_cast<off_t>(FileSize(seg) - 8 * 100)),
            0);
  auto reader = LiveDatasetReader<Key>::Open(dir);
  EXPECT_FALSE(reader.ok());
  // The exact code depends on which validator trips first (the segment's
  // own header vs. the manifest cross-check); what matters is that a
  // dataset shorter than its durable manifest never opens.
  EXPECT_TRUE(reader.status().code() == StatusCode::kIoError ||
              reader.status().code() == StatusCode::kInvalidArgument)
      << reader.status().ToString();
}

TEST(LiveDatasetReaderTest, RunSourceErrorIsSticky) {
  auto tmp = TempDir::Make("opaq-ingest");
  ASSERT_TRUE(tmp.ok());
  const std::string dir = tmp->FilePath("live");
  {
    auto live = LiveDataset<Key>::Create(dir);
    ASSERT_TRUE(live.ok());
    ASSERT_TRUE(live->Append(Batch(2000, 1)).ok());
  }
  auto reader = LiveDatasetReader<Key>::Open(dir);
  ASSERT_TRUE(reader.ok());
  // The disk dies AFTER open: chop the segment under the open reader.
  const std::string seg = dir + "/" + LiveSegmentFileName(1);
  ASSERT_EQ(::truncate(seg.c_str(), 64), 0);
  ReadOptions options;
  options.run_size = 500;
  auto source = reader->OpenRuns(options);
  ASSERT_NE(source, nullptr);
  std::vector<Key> run;
  Status first = Status::OK();
  while (true) {
    auto more = source->NextRun(&run);
    if (!more.ok()) {
      first = more.status();
      break;
    }
    ASSERT_TRUE(*more) << "stream ended without surfacing the bad read";
  }
  EXPECT_FALSE(first.ok());
  // Sticky: every subsequent call returns the same failure, never data.
  auto again = source->NextRun(&run);
  EXPECT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), first.code());
}

// ------------------------------------------------------- wire v5 append ----

// A minimal live export: what opaq_noded --live builds, reduced to the
// hooks (serialised appends + a refreshing element count).
ExportedDataset MakeLiveExport(std::shared_ptr<LiveDataset<Key>> writer) {
  ExportedDataset dataset;
  dataset.key_type = static_cast<uint32_t>(KeyTraits<Key>::kType);
  dataset.element_size = sizeof(Key);
  dataset.element_count = writer->total_elements();
  auto mutex = std::make_shared<std::mutex>();
  dataset.read = [writer, mutex](uint64_t first, uint64_t count,
                                 void* out) -> Status {
    std::lock_guard<std::mutex> lock(*mutex);
    auto reader = LiveDatasetReader<Key>::Open(writer->dir());
    OPAQ_RETURN_IF_ERROR(reader.status());
    return reader->Read(first, count, static_cast<Key*>(out));
  };
  dataset.append = [writer, mutex](const uint8_t* elements, uint64_t count)
      -> Result<WireAppendAck> {
    std::lock_guard<std::mutex> lock(*mutex);
    std::vector<Key> values(count);
    std::memcpy(values.data(), elements, count * sizeof(Key));
    OPAQ_RETURN_IF_ERROR(writer->Append(values));
    WireAppendAck ack;
    ack.total_elements = writer->total_elements();
    ack.num_segments = writer->num_segments();
    return ack;
  };
  dataset.live_count = [writer, mutex]() {
    std::lock_guard<std::mutex> lock(*mutex);
    return writer->total_elements();
  };
  dataset.owner = writer;
  return dataset;
}

TEST(WireAppendTest, RemoteAppendRoundTripAndContractErrors) {
  auto tmp = TempDir::Make("opaq-ingest");
  ASSERT_TRUE(tmp.ok());
  const std::string dir = tmp->FilePath("live");
  auto created = LiveDataset<Key>::Create(dir);
  ASSERT_TRUE(created.ok());
  auto writer =
      std::make_shared<LiveDataset<Key>>(std::move(created).value());

  NodeServer node;
  node.Export("live", MakeLiveExport(writer));
  // A static export alongside, to prove appends to it are refused.
  auto static_data = Batch(500, 77);
  MemoryBlockDevice static_device;
  ASSERT_TRUE(WriteDataset(static_data, &static_device).ok());
  auto static_file = TypedDataFile<Key>::Open(&static_device);
  ASSERT_TRUE(static_file.ok());
  node.Export("frozen", &*static_file);
  ASSERT_TRUE(node.Start().ok());

  auto client = NodeClient::Connect("127.0.0.1", node.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  auto batch1 = Batch(4000, 1);
  auto ack = client->Append("live", batch1.data(), batch1.size(),
                            sizeof(Key));
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  EXPECT_EQ(ack->total_elements, 4000u);
  EXPECT_EQ(ack->num_segments, 1u);
  auto batch2 = Batch(123, 2);
  ack = client->Append("live", batch2.data(), batch2.size(), sizeof(Key));
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(ack->total_elements, 4123u);
  EXPECT_EQ(ack->num_segments, 2u);

  // The committed data is durable and readable on the node's disk.
  auto reader = LiveDatasetReader<Key>::Open(dir);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->size(), 4123u);

  // Appends to a static export: Unimplemented, connection stays open.
  auto frozen = client->Append("frozen", batch2.data(), batch2.size(),
                               sizeof(Key));
  EXPECT_EQ(frozen.status().code(), StatusCode::kUnimplemented);
  EXPECT_TRUE(client->Ping().ok());
  // Unknown dataset: NotFound, still open.
  auto missing = client->Append("nope", batch2.data(), batch2.size(),
                                sizeof(Key));
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(client->Ping().ok());
  // Client-side validation: zero-element and oversized batches never hit
  // the wire.
  EXPECT_EQ(client->Append("live", batch2.data(), 0, sizeof(Key)).status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(client->Append("live", batch2.data(), UINT64_MAX, sizeof(Key))
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  // Server-side byte validation: an element-size lie (payload bytes not
  // count * element_size) is InvalidArgument, connection stays open.
  auto lied = client->Append("live", batch2.data(), batch2.size(),
                             sizeof(uint32_t));
  EXPECT_EQ(lied.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(client->Ping().ok());

  // kOpenDataset reflects the LIVE count, not the count frozen at Export.
  auto provider =
      RemoteRunProvider<Key>::Connect(node.address() + "/live");
  ASSERT_TRUE(provider.ok()) << provider.status().ToString();
  EXPECT_EQ(provider->size(), 4123u);
}

// ----------------------------------- append-while-serving (the TSan row) --

TEST(IngestConcurrencyTest, AppendWhileQueryingThroughRefreshingServer) {
  auto tmp = TempDir::Make("opaq-ingest");
  ASSERT_TRUE(tmp.ok());
  const std::string dir = tmp->FilePath("live");
  const OpaqConfig config = SmallConfig();
  auto created = LiveDataset<Key>::Create(dir);
  ASSERT_TRUE(created.ok());
  auto writer =
      std::make_shared<LiveDataset<Key>>(std::move(created).value());
  ASSERT_TRUE(writer->Append(Batch(5000, 100)).ok());

  // The exact builder/refresher pair opaq_queryd --watch installs.
  auto builder = [dir, config]() -> Result<QuerySession<Key>> {
    auto source = Source<Key>::OpenLive(dir);
    if (!source.ok()) return source.status();
    return Engine<Key>(config, *source).Build();
  };
  auto refresher =
      [dir, config](
          const QuerySession<Key>& current) -> Result<QuerySession<Key>> {
    auto info = ReadLiveManifestInfo(dir);
    if (!info.ok()) return info.status();
    if (info->total_elements == current.total_elements()) return current;
    auto tail = Source<Key>::OpenLive(dir, current.total_elements());
    if (!tail.ok()) return tail.status();
    auto delta = Engine<Key>(config, *tail).Build();
    if (!delta.ok()) return delta.status();
    QuerySession<Key> next = current;
    std::vector<Source<Key>> delta_sources;
    delta_sources.push_back(std::move(tail).value());
    OPAQ_RETURN_IF_ERROR(
        next.Absorb(delta->sample_list(), std::move(delta_sources)));
    return next;
  };

  QueryServer server;
  OPAQ_CHECK_OK(server.Serve<Key>("live", builder, refresher));
  OPAQ_CHECK_OK(server.Start());

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t]() {
      auto client = QueryClient<Key>::Connect("127.0.0.1", server.port(),
                                              "live");
      OPAQ_CHECK_OK(client.status());
      std::vector<Request> batch = {Request::Quantile(0.5),
                                    Request::Quantile(0.99)};
      while (!stop.load(std::memory_order_acquire)) {
        auto payload = client->QueryPayload({batch.data(), batch.size()});
        if (!payload.ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
    });
  }

  // Appends + incremental refreshes race the query threads.
  const int kAppends = 5;
  uint64_t expect_total = 5000;
  for (int i = 0; i < kAppends; ++i) {
    ASSERT_TRUE(writer->Append(Batch(2000, 200 + i)).ok());
    expect_total += 2000;
    OPAQ_CHECK_OK(server.Refresh("live"));
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(failures.load(), 0);

  // After the dust settles: epoch advanced once per refresh, the session
  // covers every committed element, and its state is byte-identical to a
  // from-scratch rebuild.
  auto client =
      QueryClient<Key>::Connect("127.0.0.1", server.port(), "live");
  ASSERT_TRUE(client.ok());
  EXPECT_EQ(client->info().epoch, 1u + kAppends);
  EXPECT_EQ(client->info().total_elements, expect_total);
  auto rebuilt = builder();
  ASSERT_TRUE(rebuilt.ok());
  std::vector<Request> batch = {Request::EquiQuantiles(10)};
  auto remote = client->QueryPayload({batch.data(), batch.size()});
  ASSERT_TRUE(remote.ok());
  auto local = rebuilt->Query({batch.data(), batch.size()});
  ASSERT_TRUE(local.ok());
  auto expected = EncodeQueryResultsPayload(*local);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(*remote, *expected)
      << "absorbed epochs diverge from a from-scratch rebuild";
  server.Stop();
}

TEST(IngestConcurrencyTest, ConcurrentAppendersSerialiseOnTheNode) {
  auto tmp = TempDir::Make("opaq-ingest");
  ASSERT_TRUE(tmp.ok());
  const std::string dir = tmp->FilePath("live");
  auto created = LiveDataset<Key>::Create(dir);
  ASSERT_TRUE(created.ok());
  auto writer =
      std::make_shared<LiveDataset<Key>>(std::move(created).value());
  NodeServer node;
  node.Export("live", MakeLiveExport(writer));
  ASSERT_TRUE(node.Start().ok());

  constexpr int kThreads = 4, kBatches = 8, kPerBatch = 500;
  std::vector<std::thread> appenders;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    appenders.emplace_back([&, t]() {
      auto client = NodeClient::Connect("127.0.0.1", node.port());
      OPAQ_CHECK_OK(client.status());
      for (int b = 0; b < kBatches; ++b) {
        auto batch = Batch(kPerBatch, 1000 + t * 100 + b);
        auto ack = client->Append("live", batch.data(), batch.size(),
                                  sizeof(Key));
        if (!ack.ok()) failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& appender : appenders) appender.join();
  EXPECT_EQ(failures.load(), 0);
  auto reader = LiveDatasetReader<Key>::Open(dir);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->size(),
            uint64_t{kThreads} * kBatches * kPerBatch);
  EXPECT_EQ(reader->num_segments(), uint64_t{kThreads} * kBatches);
}

// ----------------------------------------------------- windowed sessions --

TEST(WindowedSessionTest, RingEvictionMatchesGroundTruthRebuild) {
  const OpaqConfig config = SmallConfig();
  constexpr size_t kCapacity = 4, kWindows = 6;
  constexpr uint64_t kPerWindow = 5000;  // whole runs: rebuild-comparable
  WindowedSession<Key> ring(kCapacity);
  std::vector<std::vector<Key>> batches;
  for (size_t w = 0; w < kWindows; ++w) {
    batches.push_back(Batch(kPerWindow, 300 + w));
    auto window =
        Engine<Key>(config, Source<Key>::FromVector(batches.back()))
            .Build();
    ASSERT_TRUE(window.ok());
    ASSERT_TRUE(ring.Push(window->sample_list()).ok());
  }
  EXPECT_EQ(ring.size(), kCapacity);
  EXPECT_EQ(ring.evicted(), kWindows - kCapacity);
  EXPECT_EQ(ring.total_elements(), kCapacity * kPerWindow);

  // Ground truth: rebuild from scratch over exactly the surviving windows'
  // concatenated data. Window length is a whole number of runs, so the
  // merged ring must be BYTE-identical, not just approximately right.
  auto check = [&](size_t last_n) {
    const size_t n = last_n == 0 ? kCapacity : std::min(last_n, kCapacity);
    std::vector<Key> survivors;
    for (size_t w = kWindows - n; w < kWindows; ++w) {
      survivors.insert(survivors.end(), batches[w].begin(),
                       batches[w].end());
    }
    auto rebuilt =
        Engine<Key>(config, Source<Key>::FromVector(survivors)).Build();
    ASSERT_TRUE(rebuilt.ok());
    auto merged = ring.Merged(last_n);
    ASSERT_TRUE(merged.ok()) << merged.status().ToString();
    EXPECT_EQ(merged->total_elements(), n * kPerWindow);
    EXPECT_EQ(ListBytes(merged->sample_list()),
              ListBytes(rebuilt->sample_list()))
        << "last_n=" << last_n;
  };
  check(0);  // all surviving windows
  check(2);  // "p99 over the last 2 windows"
  check(1);
  check(99);  // clamped to the ring size

  // The merged session is a full QuerySession: certified brackets come out.
  auto merged = ring.Merged();
  ASSERT_TRUE(merged.ok());
  std::vector<Request> batch = {Request::Quantile(0.99)};
  auto answers = merged->Query({batch.data(), batch.size()});
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers->results.size(), 1u);
  EXPECT_LE(answers->results[0].estimates[0].lower,
            answers->results[0].estimates[0].upper);
}

TEST(WindowedSessionTest, ContractErrors) {
  WindowedSession<Key> ring(2);
  EXPECT_EQ(ring.Merged().status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(ring.Push(SampleList<Key>()).code(),
            StatusCode::kInvalidArgument);

  const OpaqConfig config = SmallConfig();
  auto window =
      Engine<Key>(config, Source<Key>::FromVector(Batch(2000, 1))).Build();
  ASSERT_TRUE(window.ok());
  ASSERT_TRUE(ring.Push(window->sample_list()).ok());

  // A window sketched at a different sub-run size cannot join the ring.
  OpaqConfig other = config;
  other.run_size = 500;
  auto alien =
      Engine<Key>(other, Source<Key>::FromVector(Batch(2000, 2))).Build();
  ASSERT_TRUE(alien.ok());
  EXPECT_EQ(ring.Push(alien->sample_list()).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ring.size(), 1u);
}

}  // namespace
}  // namespace opaq
