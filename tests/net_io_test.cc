// Data-node subsystem tests over real loopback TCP: server/client
// handshake and range reads, remote run streams matching the local reader
// element for element (sync and pipelined async), striped exports,
// concurrent per-stream connections, and the facade path
// (`Source::OpenRemote` -> multi-shard `Engine`) answering identically to
// a single-process run.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/dataset.h"
#include "io/block_device.h"
#include "io/data_file.h"
#include "io/run_reader.h"
#include "io/striped_data_file.h"
#include "net/client.h"
#include "net/export_spec.h"
#include "net/node_server.h"
#include "net/remote_source.h"
#include "opaq/engine.h"
#include "opaq/query.h"
#include "opaq/source.h"

namespace opaq {
namespace {

using Key = uint64_t;

/// One loopback node serving `data` as dataset "data" (plus, when
/// `stripes` > 1, the same data as the striped dataset "striped").
struct NodeFixture {
  std::vector<Key> data;
  std::vector<std::unique_ptr<MemoryBlockDevice>> devices;
  std::unique_ptr<TypedDataFile<Key>> file;
  std::unique_ptr<StripedDataFile<Key>> striped;
  NodeServer server;

  explicit NodeFixture(uint64_t n, NodeServerOptions options = {},
                       int stripes = 1, uint64_t chunk = 333)
      : data(MakeData(n)), server(options) {
    devices.push_back(std::make_unique<MemoryBlockDevice>());
    OPAQ_CHECK_OK(WriteDataset(data, devices.back().get()));
    auto opened = TypedDataFile<Key>::Open(devices.back().get());
    OPAQ_CHECK_OK(opened.status());
    file = std::make_unique<TypedDataFile<Key>>(std::move(opened).value());
    server.Export("data", file.get());
    if (stripes > 1) {
      std::vector<BlockDevice*> raw;
      for (int s = 0; s < stripes; ++s) {
        devices.push_back(std::make_unique<MemoryBlockDevice>());
        raw.push_back(devices.back().get());
      }
      auto written = WriteStriped(data, std::move(raw), chunk);
      OPAQ_CHECK_OK(written.status());
      striped = std::make_unique<StripedDataFile<Key>>(
          std::move(written).value());
      server.Export("striped", striped.get());
    }
    OPAQ_CHECK_OK(server.Start());
  }

  static std::vector<Key> MakeData(uint64_t n) {
    DatasetSpec spec;
    spec.n = n;
    spec.seed = 77;
    spec.distribution = Distribution::kZipf;
    return GenerateDataset<Key>(spec);
  }

  std::string spec(const std::string& name = "data") const {
    return server.address() + "/" + name;
  }
};

/// Drains a run source; dies on stream errors (these tests expect clean
/// streams — the failure paths live in net_failure_test).
std::vector<std::vector<Key>> Drain(RunSource<Key>* source) {
  std::vector<std::vector<Key>> runs;
  std::vector<Key> buffer;
  for (;;) {
    auto more = source->NextRun(&buffer);
    OPAQ_CHECK_OK(more.status());
    if (!*more) return runs;
    runs.push_back(buffer);
  }
}

TEST(ParseRemoteSpecTest, ValidAndInvalid) {
  auto spec = ParseRemoteSpec("node9.example.com:34601/sales/2026");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->host, "node9.example.com");
  EXPECT_EQ(spec->port, 34601);
  EXPECT_EQ(spec->dataset, "sales/2026");
  EXPECT_EQ(spec->ToString(), "node9.example.com:34601/sales/2026");

  for (const char* bad :
       {"", "host", "host:123", "host:123/", ":123/ds", "host:/ds",
        "host:0/ds", "host:65536/ds", "host:9x/ds"}) {
    EXPECT_FALSE(ParseRemoteSpec(bad).ok()) << bad;
  }
}

TEST(ParseRemoteSpecTest, HostsWithColons) {
  // Regression: hosts containing ':' (IPv6 literals) used to mis-split on
  // the FIRST colon, truncating the host and garbling the port. The spec
  // splits on the LAST colon before the '/', with optional brackets.
  auto bracketed = ParseRemoteSpec("[::1]:9000/ds");
  ASSERT_TRUE(bracketed.ok()) << bracketed.status().ToString();
  EXPECT_EQ(bracketed->host, "::1");
  EXPECT_EQ(bracketed->port, 9000);
  EXPECT_EQ(bracketed->dataset, "ds");
  // ToString re-brackets, and the round trip is the identity.
  EXPECT_EQ(bracketed->ToString(), "[::1]:9000/ds");
  auto round = ParseRemoteSpec(bracketed->ToString());
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->host, bracketed->host);
  EXPECT_EQ(round->port, bracketed->port);
  EXPECT_EQ(round->dataset, bracketed->dataset);

  // Bare (unbracketed) colon hosts parse too: last colon wins.
  auto bare = ParseRemoteSpec("fe80::21:9000/metrics");
  ASSERT_TRUE(bare.ok()) << bare.status().ToString();
  EXPECT_EQ(bare->host, "fe80::21");
  EXPECT_EQ(bare->port, 9000);
  EXPECT_EQ(bare->dataset, "metrics");

  // Malformed colon-host specs stay rejected, with the dataset-name rule
  // enforced for every host shape.
  for (const char* bad : {"[::1]:9000/", "[::1:9000/ds", "::1]:9000/ds",
                          "[]:9000/ds", "[::1]:/ds", "[::1]/ds"}) {
    EXPECT_FALSE(ParseRemoteSpec(bad).ok()) << bad;
  }
  auto empty_name = ParseRemoteSpec("[::1]:9000/");
  ASSERT_FALSE(empty_name.ok());
  EXPECT_EQ(empty_name.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(empty_name.status().message().find("dataset"),
            std::string::npos);
}

TEST(ParseExportSpecsTest, SplitsOnFirstEqualsOnly) {
  // Regression: paths containing '=' (date-partitioned layouts and the
  // like) used to split the entry at the wrong place.
  auto specs = ParseExportSpecs("ds=/data/run=3.opaq,arr=/a/d=1+/b/d=2");
  ASSERT_TRUE(specs.ok()) << specs.status().ToString();
  ASSERT_EQ(specs->size(), 2u);
  EXPECT_EQ((*specs)[0].name, "ds");
  EXPECT_EQ((*specs)[0].paths,
            (std::vector<std::string>{"/data/run=3.opaq"}));
  EXPECT_EQ((*specs)[1].name, "arr");
  EXPECT_EQ((*specs)[1].paths,
            (std::vector<std::string>{"/a/d=1", "/b/d=2"}));
}

TEST(ParseExportSpecsTest, DuplicateNamesAreAStartupError) {
  // Regression: a duplicate dataset name silently let the last entry win —
  // the node then served different bytes than the operator listed.
  auto dup = ParseExportSpecs("ds=/a.opaq,ds=/b.opaq");
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(dup.status().message().find("duplicate"), std::string::npos);
  EXPECT_NE(dup.status().message().find("ds"), std::string::npos);

  for (const char* bad : {"", "=x", "ds=", "ds", "ds=a+,x=b", "ds=a,,x=b"}) {
    EXPECT_FALSE(ParseExportSpecs(bad).ok()) << "'" << bad << "'";
  }
}

TEST(NodeServerTest, StartRequiresExports) {
  NodeServer server;
  auto status = server.Start();
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(NodeServerTest, PingOpenAndRead) {
  NodeFixture node(1000);
  auto client = NodeClient::Connect("127.0.0.1", node.server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE(client->Ping().ok());

  auto info = client->OpenDataset("data");
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->element_count, 1000u);
  EXPECT_EQ(info->element_size, sizeof(Key));
  EXPECT_EQ(info->key_type, static_cast<uint32_t>(KeyTraits<Key>::kType));
  EXPECT_GT(info->max_read_elements, 0u);

  auto missing = client->OpenDataset("nope");
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  // The NotFound answer is per-request: the connection stays usable.
  std::vector<Key> values(7);
  ASSERT_TRUE(client->ReadRange("data", 40, 7, values.data(),
                                values.size() * sizeof(Key))
                  .ok());
  for (int i = 0; i < 7; ++i) EXPECT_EQ(values[i], node.data[40 + i]);
}

TEST(NodeServerTest, BoundsAndSizeLimitsEnforced) {
  NodeServerOptions options;
  options.max_read_bytes = 64 * sizeof(Key);
  NodeFixture node(500, options);
  auto client = NodeClient::Connect("127.0.0.1", node.server.port());
  ASSERT_TRUE(client.ok());
  auto info = client->OpenDataset("data");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->max_read_elements, 64u);

  std::vector<Key> buffer(200);
  // Oversized request: rejected, connection survives.
  EXPECT_EQ(client
                ->ReadRange("data", 0, 100, buffer.data(),
                            100 * sizeof(Key))
                .code(),
            StatusCode::kInvalidArgument);
  // Past-the-end request: rejected, connection survives.
  EXPECT_EQ(client
                ->ReadRange("data", 480, 40, buffer.data(), 40 * sizeof(Key))
                .code(),
            StatusCode::kOutOfRange);
  // Zero-length request: rejected.
  EXPECT_EQ(client->ReadRange("data", 0, 0, buffer.data(), 0).code(),
            StatusCode::kInvalidArgument);
  // And a well-formed read still works on the same connection.
  EXPECT_TRUE(
      client->ReadRange("data", 490, 10, buffer.data(), 10 * sizeof(Key))
          .ok());
}

void ExpectRemoteMatchesLocal(const NodeFixture& node, uint64_t run_size,
                              IoMode io_mode, uint64_t depth,
                              uint64_t max_read_bytes_hint = 0) {
  (void)max_read_bytes_hint;
  auto provider = RemoteRunProvider<Key>::Connect(node.spec());
  ASSERT_TRUE(provider.ok()) << provider.status().ToString();
  EXPECT_EQ(provider->size(), node.data.size());

  ReadOptions options;
  options.run_size = run_size;
  options.io_mode = io_mode;
  options.prefetch_depth = depth;
  auto remote_runs = Drain(provider->OpenRuns(options).get());

  RunReader<Key> local(node.file.get(), run_size);
  std::vector<std::vector<Key>> local_runs;
  std::vector<Key> buffer;
  for (;;) {
    auto more = local.NextRun(&buffer);
    OPAQ_CHECK_OK(more.status());
    if (!*more) break;
    local_runs.push_back(buffer);
  }
  ASSERT_EQ(remote_runs.size(), local_runs.size())
      << "m=" << run_size << " mode=" << IoModeName(io_mode);
  for (size_t i = 0; i < local_runs.size(); ++i) {
    ASSERT_EQ(remote_runs[i], local_runs[i]) << "run " << i;
  }
}

TEST(RemoteRunSourceTest, MatchesLocalReaderAcrossModes) {
  NodeFixture node(10007);  // ragged tail
  for (uint64_t run_size : {1u, 100u, 999u, 10007u, 20000u}) {
    ExpectRemoteMatchesLocal(node, run_size, IoMode::kSync, 2);
    for (uint64_t depth : {1u, 2u, 5u}) {
      ExpectRemoteMatchesLocal(node, run_size, IoMode::kAsync, depth);
    }
  }
}

TEST(NodeServerTest, StartRejectsUnframeableReadBound) {
  NodeServerOptions options;
  options.max_read_bytes = uint64_t{kMaxWirePayload} + 1;
  NodeServer bad(options);
  std::vector<Key> data(10, 1);
  MemoryBlockDevice device;
  OPAQ_CHECK_OK(WriteDataset(data, &device));
  auto file = TypedDataFile<Key>::Open(&device);
  ASSERT_TRUE(file.ok());
  bad.Export("data", &*file);
  EXPECT_EQ(bad.Start().code(), StatusCode::kInvalidArgument);
}

TEST(NodeServerTest, SubElementReadBoundStillServesOneElementSlices) {
  // A bound below the element size must not strand the dataset: the node
  // advertises (and honors) one-element reads, so streams still complete.
  NodeServerOptions options;
  options.max_read_bytes = 4;  // < sizeof(Key)
  NodeFixture node(100, options);
  auto client = NodeClient::Connect("127.0.0.1", node.server.port());
  ASSERT_TRUE(client.ok());
  auto info = client->OpenDataset("data");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->max_read_elements, 1u);
  Key value = 0;
  ASSERT_TRUE(client->ReadRange("data", 42, 1, &value, sizeof(value)).ok());
  EXPECT_EQ(value, node.data[42]);
  ExpectRemoteMatchesLocal(node, 37, IoMode::kAsync, 2);
}

TEST(NodeServerTest, SequentialConnectionsAreReaped) {
  // A long-lived node must keep serving after many short-lived clients
  // (the accept loop reaps finished connection threads as it goes).
  NodeFixture node(50);
  for (int i = 0; i < 40; ++i) {
    auto client = NodeClient::Connect("127.0.0.1", node.server.port());
    ASSERT_TRUE(client.ok()) << "connection " << i;
    ASSERT_TRUE(client->Ping().ok()) << "connection " << i;
  }
  EXPECT_GE(node.server.connections_accepted(), 40u);
}

TEST(RemoteRunSourceTest, SmallReadBoundForcesManySlices) {
  // A tiny per-request bound exercises the slice/splice path: runs must
  // still come out identical, sync and async.
  NodeServerOptions options;
  options.max_read_bytes = 16 * sizeof(Key);
  NodeFixture node(4096, options);
  ExpectRemoteMatchesLocal(node, 1000, IoMode::kSync, 2);
  ExpectRemoteMatchesLocal(node, 1000, IoMode::kAsync, 3);
}

TEST(RemoteRunSourceTest, SubRangesClampLikeLocalReader) {
  NodeFixture node(5000);
  auto provider = RemoteRunProvider<Key>::Connect(node.spec());
  ASSERT_TRUE(provider.ok());
  struct Case {
    uint64_t first, count;
  } cases[] = {{0, 5000}, {100, 250}, {4990, UINT64_MAX}, {5000, 10}, {0, 0}};
  for (const Case& c : cases) {
    ReadOptions options;
    options.run_size = 128;
    options.io_mode = IoMode::kAsync;
    auto remote_runs =
        Drain(provider->OpenRuns(options, c.first, c.count).get());
    RunReader<Key> local(node.file.get(), 128, c.first, c.count);
    std::vector<std::vector<Key>> local_runs;
    std::vector<Key> buffer;
    for (;;) {
      auto more = local.NextRun(&buffer);
      OPAQ_CHECK_OK(more.status());
      if (!*more) break;
      local_runs.push_back(buffer);
    }
    ASSERT_EQ(remote_runs, local_runs)
        << "[" << c.first << ", +" << c.count << ")";
  }
}

TEST(RemoteRunSourceTest, StripedExportServesLogicalOrder) {
  NodeFixture node(9000, NodeServerOptions(), /*stripes=*/3, /*chunk=*/123);
  auto provider = RemoteRunProvider<Key>::Connect(node.spec("striped"));
  ASSERT_TRUE(provider.ok()) << provider.status().ToString();
  ReadOptions options;
  options.run_size = 777;
  options.io_mode = IoMode::kAsync;
  auto runs = Drain(provider->OpenRuns(options).get());
  std::vector<Key> flat;
  for (const auto& run : runs) flat.insert(flat.end(), run.begin(), run.end());
  EXPECT_EQ(flat, node.data);
}

TEST(RemoteRunSourceTest, ConcurrentStreamsFromOneProvider) {
  // Each OpenRuns dials its own connection; two threads streaming halves
  // of the dataset concurrently must each see exactly their half.
  NodeFixture node(20000);
  auto provider = RemoteRunProvider<Key>::Connect(node.spec());
  ASSERT_TRUE(provider.ok());
  const uint64_t half = 10000;
  std::vector<Key> lo, hi;
  std::thread lo_thread([&] {
    ReadOptions options;
    options.run_size = 512;
    options.io_mode = IoMode::kAsync;
    for (const auto& run : Drain(provider->OpenRuns(options, 0, half).get())) {
      lo.insert(lo.end(), run.begin(), run.end());
    }
  });
  std::thread hi_thread([&] {
    ReadOptions options;
    options.run_size = 512;
    options.io_mode = IoMode::kAsync;
    for (const auto& run :
         Drain(provider->OpenRuns(options, half, UINT64_MAX).get())) {
      hi.insert(hi.end(), run.begin(), run.end());
    }
  });
  lo_thread.join();
  hi_thread.join();
  EXPECT_EQ(lo, std::vector<Key>(node.data.begin(),
                                 node.data.begin() + half));
  EXPECT_EQ(hi,
            std::vector<Key>(node.data.begin() + half, node.data.end()));
  EXPECT_GE(node.server.connections_accepted(), 3u);  // handshake + 2 streams
}

TEST(RemoteSourceFacadeTest, OpenRemoteMultiShardEngineMatchesLocal) {
  // The acceptance shape: two loopback nodes, one Engine across them —
  // brackets and exact answers identical to a single-process run over the
  // same shards in the same order.
  NodeFixture a(15000), b(23000);

  auto remote_a = Source<Key>::OpenRemote(a.spec());
  auto remote_b = Source<Key>::OpenRemote(b.spec());
  ASSERT_TRUE(remote_a.ok()) << remote_a.status().ToString();
  ASSERT_TRUE(remote_b.ok()) << remote_b.status().ToString();
  EXPECT_EQ(remote_a->size(), 15000u);
  EXPECT_EQ(remote_a->stripes(), 1u);

  OpaqConfig config;
  config.run_size = 2000;
  config.samples_per_run = 100;
  config.io_mode = IoMode::kAsync;

  auto remote_session =
      Engine<Key>(config, {*remote_a, *remote_b}).Build();
  ASSERT_TRUE(remote_session.ok()) << remote_session.status().ToString();
  auto local_session =
      Engine<Key>(config, {Source<Key>::FromFile(a.file.get()),
                           Source<Key>::FromFile(b.file.get())})
          .Build();
  ASSERT_TRUE(local_session.ok());

  auto query = [](QuerySession<Key>& session) {
    auto batch = session.Query({
        QueryRequest<Key>::EquiQuantiles(10),
        QueryRequest<Key>::Quantile(0.5, /*exact=*/true),
    });
    OPAQ_CHECK_OK(batch.status());
    return std::move(batch).value();
  };
  auto remote_answers = query(*remote_session);
  auto local_answers = query(*local_session);

  ASSERT_EQ(remote_answers.results[0].estimates.size(),
            local_answers.results[0].estimates.size());
  for (size_t i = 0; i < local_answers.results[0].estimates.size(); ++i) {
    EXPECT_EQ(remote_answers.results[0].estimates[i].lower,
              local_answers.results[0].estimates[i].lower);
    EXPECT_EQ(remote_answers.results[0].estimates[i].upper,
              local_answers.results[0].estimates[i].upper);
  }
  EXPECT_EQ(remote_answers.results[1].exact, local_answers.results[1].exact);
  EXPECT_EQ(remote_answers.total_elements, 15000u + 23000u);
}

TEST(RemoteSourceFacadeTest, EmptyAndExhaustedRanges) {
  NodeFixture node(100);
  auto provider = RemoteRunProvider<Key>::Connect(node.spec());
  ASSERT_TRUE(provider.ok());
  ReadOptions options;
  options.run_size = 64;
  for (IoMode mode : {IoMode::kSync, IoMode::kAsync}) {
    options.io_mode = mode;
    auto source = provider->OpenRuns(options, 100, 50);
    std::vector<Key> buffer{42};
    auto more = source->NextRun(&buffer);
    ASSERT_TRUE(more.ok());
    EXPECT_FALSE(*more);
    EXPECT_TRUE(buffer.empty());
  }
}

}  // namespace
}  // namespace opaq
