// Cross-backend conformance harness: for ANY config, the sync, async,
// striped, COMPRESSED-EXTENT and REMOTE (loopback data-node) storage
// backends must be indistinguishable in their output — byte-identical
// serialized sketches and identical final quantiles (both estimated
// brackets and exact second-pass values). Prefetch threads, stripe
// fan-out, the network and the codecs may reorder time and shrink bytes,
// never change data.
//
// The sweep is a seeded pseudo-random walk over the config space {n, run
// length, key distribution, stripes 1/2/4, chunk size, prefetch depth},
// deliberately biased toward ragged shapes (n not divisible by the run,
// runs not divisible by the chunk, partial tail chunks), plus a set of
// fixed edge cases. Deterministic: one master seed drives everything.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/exact.h"
#include "core/opaq.h"
#include "core/sketch_io.h"
#include "data/dataset.h"
#include "ingest/live_dataset.h"
#include "io/async_run_reader.h"
#include "io/block_device.h"
#include "io/codec.h"
#include "io/extent.h"
#include "io/striped_data_file.h"
#include "io/striped_run_source.h"
#include "io/tempdir.h"
#include "net/node_server.h"
#include "net/remote_extent_source.h"
#include "net/remote_source.h"
#include "opaq/engine.h"
#include "opaq/query.h"
#include "opaq/source.h"
#include "parallel/parallel_opaq.h"
#include "util/random.h"

namespace opaq {
namespace {

using Key = uint64_t;

struct SweepCase {
  uint64_t n = 0;
  uint64_t run_size = 0;
  uint64_t samples_per_run = 0;
  uint64_t chunk = 0;
  Distribution distribution = Distribution::kUniform;
  uint64_t data_seed = 0;
  uint64_t sketch_seed = 0;

  std::string Describe() const {
    return "n=" + std::to_string(n) + " m=" + std::to_string(run_size) +
           " s=" + std::to_string(samples_per_run) +
           " chunk=" + std::to_string(chunk) +
           " dist=" + DistributionName(distribution) +
           " seed=" + std::to_string(data_seed);
  }
};

// Runs the full sample phase through `provider` with the given io mode and
// returns the serialized sketch — the strongest practical equality.
std::vector<uint8_t> SketchBytes(const RunProvider<Key>& provider,
                                 const SweepCase& c, IoMode io_mode,
                                 uint64_t prefetch_depth) {
  OpaqConfig config;
  config.run_size = c.run_size;
  config.samples_per_run = c.samples_per_run;
  config.seed = c.sketch_seed;
  config.io_mode = io_mode;
  config.prefetch_depth = prefetch_depth;
  OpaqSketch<Key> sketch(config);
  OPAQ_CHECK_OK(sketch.Consume(provider));
  SampleList<Key> list = sketch.FinalizeSampleList();
  MemoryBlockDevice out;
  OPAQ_CHECK_OK(SaveSampleList(list, &out));
  auto size = out.Size();
  OPAQ_CHECK_OK(size.status());
  std::vector<uint8_t> bytes(*size);
  OPAQ_CHECK_OK(out.ReadAt(0, bytes.data(), bytes.size()));
  return bytes;
}

// Same sample phase, driven through the public facade: an Engine over a
// Source must leave exactly the bytes the direct sketch leaves.
std::vector<uint8_t> EngineSketchBytes(const Source<Key>& source,
                                       const SweepCase& c, IoMode io_mode,
                                       uint64_t prefetch_depth) {
  OpaqConfig config;
  config.run_size = c.run_size;
  config.samples_per_run = c.samples_per_run;
  config.seed = c.sketch_seed;
  config.io_mode = io_mode;
  config.prefetch_depth = prefetch_depth;
  auto session = Engine<Key>(config, source).Build();
  OPAQ_CHECK_OK(session.status());
  MemoryBlockDevice out;
  OPAQ_CHECK_OK(SaveSampleList(session->sample_list(), &out));
  auto size = out.Size();
  OPAQ_CHECK_OK(size.status());
  std::vector<uint8_t> bytes(*size);
  OPAQ_CHECK_OK(out.ReadAt(0, bytes.data(), bytes.size()));
  return bytes;
}

// One plain file, one D-striped file and one D-striped COMPRESSED extent
// file over the same logical data, with all their devices, kept alive
// together. The extent file reuses `chunk` as its extent size so the sweep
// drags compression through the same ragged geometry as striping, and
// alternates codecs (delta / zlib when available) across stripe widths.
struct Backends {
  std::vector<std::unique_ptr<MemoryBlockDevice>> devices;
  std::unique_ptr<TypedDataFile<Key>> plain_file;
  std::unique_ptr<StripedDataFile<Key>> striped_file;
  std::unique_ptr<ExtentFile> extent_file;
  std::unique_ptr<FileRunProvider<Key>> plain;
  std::unique_ptr<StripedFileProvider<Key>> striped;
  std::unique_ptr<ExtentFileProvider<Key>> extent;

  Backends(const std::vector<Key>& data, int stripes, uint64_t chunk) {
    devices.push_back(std::make_unique<MemoryBlockDevice>());
    OPAQ_CHECK_OK(WriteDataset(data, devices.back().get()));
    auto file = TypedDataFile<Key>::Open(devices.back().get());
    OPAQ_CHECK_OK(file.status());
    plain_file =
        std::make_unique<TypedDataFile<Key>>(std::move(file).value());
    plain = std::make_unique<FileRunProvider<Key>>(plain_file.get());

    std::vector<BlockDevice*> raw;
    for (int s = 0; s < stripes; ++s) {
      devices.push_back(std::make_unique<MemoryBlockDevice>());
      raw.push_back(devices.back().get());
    }
    auto striped_result = WriteStriped(data, raw, chunk);
    OPAQ_CHECK_OK(striped_result.status());
    striped_file = std::make_unique<StripedDataFile<Key>>(
        std::move(striped_result).value());
    striped = std::make_unique<StripedFileProvider<Key>>(striped_file.get());

    std::vector<BlockDevice*> extent_raw;
    for (int s = 0; s < stripes; ++s) {
      devices.push_back(std::make_unique<MemoryBlockDevice>());
      extent_raw.push_back(devices.back().get());
    }
    ExtentWriterOptions extent_options;
    extent_options.extent_elements = chunk;
    extent_options.codec =
        stripes % 2 == 0 && CodecAvailable(ExtentCodec::kZlib)
            ? ExtentCodec::kZlib
            : ExtentCodec::kDelta;
    OPAQ_CHECK_OK(WriteExtents(data, extent_raw, extent_options).status());
    auto extent_result = ExtentFile::Open(extent_raw);
    OPAQ_CHECK_OK(extent_result.status());
    extent_file =
        std::make_unique<ExtentFile>(std::move(extent_result).value());
    extent = std::make_unique<ExtentFileProvider<Key>>(extent_file.get());
  }
};

// The conformance core: every backend/mode/depth combination must produce
// the reference (plain sync) sketch bytes.
void ExpectAllBackendsAgree(const SweepCase& c) {
  DatasetSpec spec;
  spec.n = c.n;
  spec.distribution = c.distribution;
  spec.seed = c.data_seed;
  std::vector<Key> data = GenerateDataset<Key>(spec);

  std::vector<uint8_t> reference;
  for (int stripes : {1, 2, 4}) {
    Backends backends(data, stripes, c.chunk);
    // The striped file must hold exactly the logical dataset.
    auto striped_all = backends.striped_file->ReadAll();
    ASSERT_TRUE(striped_all.ok()) << c.Describe();
    ASSERT_EQ(*striped_all, data) << c.Describe() << " stripes=" << stripes;

    if (reference.empty()) {
      reference = SketchBytes(*backends.plain, c, IoMode::kSync, 2);
      ASSERT_FALSE(reference.empty()) << c.Describe();
    }
    for (uint64_t depth : {1u, 2u, 5u}) {
      EXPECT_EQ(SketchBytes(*backends.plain, c, IoMode::kAsync, depth),
                reference)
          << c.Describe() << " async depth=" << depth;
      EXPECT_EQ(SketchBytes(*backends.striped, c, IoMode::kAsync, depth),
                reference)
          << c.Describe() << " striped x" << stripes << " depth=" << depth;
    }
    EXPECT_EQ(SketchBytes(*backends.striped, c, IoMode::kSync, 2), reference)
        << c.Describe() << " striped-inline x" << stripes;

    // Compressed extents: the same logical data stored packed — inline
    // decode and per-stripe decode threads — must leave the exact
    // reference bytes. Compression must be invisible to the sketch.
    for (uint64_t depth : {1u, 2u, 5u}) {
      EXPECT_EQ(SketchBytes(*backends.extent, c, IoMode::kAsync, depth),
                reference)
          << c.Describe() << " extent x" << stripes << " ("
          << ExtentCodecName(backends.extent_file->default_codec())
          << ") depth=" << depth;
    }
    EXPECT_EQ(SketchBytes(*backends.extent, c, IoMode::kSync, 2), reference)
        << c.Describe() << " extent-inline x" << stripes;

    // Remote: a loopback node serving the SAME layouts must leave the
    // same bytes — the wire moves data, never changes it. Plain export at
    // stripes == 1, the striped export at each wider fan-out.
    NodeServer node;
    node.Export("plain", backends.plain_file.get());
    node.Export("striped", backends.striped_file.get());
    node.Export<Key>("extent", backends.extent_file.get());
    OPAQ_CHECK_OK(node.Start());
    const std::string remote_name = stripes == 1 ? "plain" : "striped";
    auto remote =
        RemoteRunProvider<Key>::Connect(node.address() + "/" + remote_name);
    OPAQ_CHECK_OK(remote.status());
    EXPECT_EQ(SketchBytes(*remote, c, IoMode::kSync, 2), reference)
        << c.Describe() << " remote/" << remote_name << " sync";
    EXPECT_EQ(SketchBytes(*remote, c, IoMode::kAsync, 2), reference)
        << c.Describe() << " remote/" << remote_name << " async";

    // Wire v4 extent streaming: packed extents on the wire, decoded client
    // side — and a v1 range stream of the SAME compressed export (the node
    // decodes server-side). Both must leave the reference bytes.
    auto remote_extent =
        RemoteExtentProvider<Key>::Connect(node.address() + "/extent");
    OPAQ_CHECK_OK(remote_extent.status());
    EXPECT_EQ(SketchBytes(*remote_extent, c, IoMode::kSync, 2), reference)
        << c.Describe() << " remote-extent x" << stripes << " sync";
    EXPECT_EQ(SketchBytes(*remote_extent, c, IoMode::kAsync, 2), reference)
        << c.Describe() << " remote-extent x" << stripes << " async";
    auto remote_extent_v1 =
        RemoteRunProvider<Key>::Connect(node.address() + "/extent");
    OPAQ_CHECK_OK(remote_extent_v1.status());
    EXPECT_EQ(SketchBytes(*remote_extent_v1, c, IoMode::kAsync, 2),
              reference)
        << c.Describe() << " remote-extent x" << stripes
        << " via v1 range stream";

    // The same equalities must hold when the facade drives the pass: an
    // Engine over a Source wrapping each backend — plain file, striped
    // file, and the in-memory vector — leaves byte-identical sketches.
    // (Engine refuses datasets too small for even one sample — n below the
    // sub-run size — with FailedPrecondition instead of an empty list.)
    if (c.n < c.run_size / c.samples_per_run) {
      OpaqConfig config;
      config.run_size = c.run_size;
      config.samples_per_run = c.samples_per_run;
      auto too_small =
          Engine<Key>(config, Source<Key>::FromVector(data)).Build();
      EXPECT_EQ(too_small.status().code(), StatusCode::kFailedPrecondition)
          << c.Describe();
      continue;
    }
    EXPECT_EQ(EngineSketchBytes(Source<Key>::FromFile(backends.plain_file.get()),
                                c, IoMode::kSync, 2),
              reference)
        << c.Describe() << " Engine/Source plain";
    EXPECT_EQ(EngineSketchBytes(
                  Source<Key>::FromFile(backends.striped_file.get()), c,
                  IoMode::kAsync, 2),
              reference)
        << c.Describe() << " Engine/Source striped x" << stripes;
    auto extent_source = Source<Key>::FromFile(backends.extent_file.get());
    OPAQ_CHECK_OK(extent_source.status());
    EXPECT_EQ(EngineSketchBytes(*extent_source, c, IoMode::kAsync, 2),
              reference)
        << c.Describe() << " Engine/Source extent x" << stripes;
    if (stripes == 1) {
      EXPECT_EQ(EngineSketchBytes(Source<Key>::FromVector(data), c,
                                  IoMode::kSync, 2),
                reference)
          << c.Describe() << " Engine/Source in-memory";
      // Wire v2 (default: the node computes the sample list itself and
      // ships O(s) bytes) and forced v1 (the client streams raw runs) must
      // BOTH leave the reference bytes — the strongest statement that the
      // distributed sample phase is the same computation.
      auto remote_source = Source<Key>::OpenRemote(node.address() + "/plain");
      OPAQ_CHECK_OK(remote_source.status());
      EXPECT_NE(remote_source->remote_compute(), nullptr) << c.Describe();
      EXPECT_EQ(EngineSketchBytes(*remote_source, c, IoMode::kAsync, 2),
                reference)
          << c.Describe() << " Engine/Source remote (wire v2)";
      NodeClientOptions v1_only;
      v1_only.max_wire_version = 1;
      auto remote_v1 =
          Source<Key>::OpenRemote(node.address() + "/plain", v1_only);
      OPAQ_CHECK_OK(remote_v1.status());
      EXPECT_EQ(remote_v1->remote_compute(), nullptr) << c.Describe();
      EXPECT_EQ(EngineSketchBytes(*remote_v1, c, IoMode::kAsync, 2),
                reference)
          << c.Describe() << " Engine/Source remote (forced v1)";
      // Compressed export, compute disabled: the engine must fall back to
      // STREAMING the dataset as wire-v4 packed extents, decode them
      // client side, and still leave the reference bytes — with the
      // unpack accounting proving the packed path actually ran.
      NodeClientOptions stream_only;
      stream_only.node_compute = false;
      auto remote_packed = Source<Key>::OpenRemote(
          node.address() + "/extent", stream_only);
      OPAQ_CHECK_OK(remote_packed.status());
      EXPECT_EQ(remote_packed->remote_compute(), nullptr) << c.Describe();
      ASSERT_NE(remote_packed->pack_stats(), nullptr) << c.Describe();
      EXPECT_EQ(EngineSketchBytes(*remote_packed, c, IoMode::kAsync, 2),
                reference)
          << c.Describe() << " Engine/Source remote packed extents";
      EXPECT_GT(remote_packed->pack_stats()->Snapshot().extents, 0u)
          << c.Describe() << " extent stream did not actually run";

      // Live-dataset backend: the same logical data appended as several
      // segments — each a whole number of runs except the last, so the
      // per-segment run grid equals flat chunking — must leave the exact
      // reference bytes, through the raw reader and the facade Source.
      auto tmp = TempDir::Make("opaq-conformance-live");
      OPAQ_CHECK_OK(tmp.status());
      const std::string live_dir = tmp->FilePath("live");
      {
        auto live = LiveDataset<Key>::Create(live_dir);
        OPAQ_CHECK_OK(live.status());
        const uint64_t plan[] = {2 * c.run_size, c.run_size, 3 * c.run_size};
        size_t pos = 0, i = 0;
        while (pos < data.size()) {
          const size_t take =
              std::min<size_t>(plan[i++ % 3], data.size() - pos);
          OPAQ_CHECK_OK(live->Append(std::vector<Key>(
              data.begin() + static_cast<ptrdiff_t>(pos),
              data.begin() + static_cast<ptrdiff_t>(pos + take))));
          pos += take;
        }
      }
      auto live_reader = LiveDatasetReader<Key>::Open(live_dir);
      OPAQ_CHECK_OK(live_reader.status());
      EXPECT_EQ(SketchBytes(*live_reader, c, IoMode::kSync, 2), reference)
          << c.Describe() << " live sync";
      EXPECT_EQ(SketchBytes(*live_reader, c, IoMode::kAsync, 2), reference)
          << c.Describe() << " live async";
      auto live_source = Source<Key>::OpenLive(live_dir);
      OPAQ_CHECK_OK(live_source.status());
      EXPECT_EQ(EngineSketchBytes(*live_source, c, IoMode::kAsync, 2),
                reference)
          << c.Describe() << " Engine/Source live";

      // The incremental-refresh guarantee, conformance-gated: a session
      // built over the head segments that Absorbs a sketch of the appended
      // tail must hold BYTE-IDENTICAL sample-list state to one rebuilt
      // from scratch over the whole dataset.
      if (c.n > 3 * c.run_size) {
        const uint64_t head = 2 * c.run_size;  // = the first segment
        OpaqConfig config;
        config.run_size = c.run_size;
        config.samples_per_run = c.samples_per_run;
        config.seed = c.sketch_seed;
        auto head_session =
            Engine<Key>(config, Source<Key>::FromVector(std::vector<Key>(
                                    data.begin(),
                                    data.begin() +
                                        static_cast<ptrdiff_t>(head))))
                .Build();
        OPAQ_CHECK_OK(head_session.status());
        auto tail = Source<Key>::OpenLive(live_dir, head);
        OPAQ_CHECK_OK(tail.status());
        auto delta = Engine<Key>(config, *tail).Build();
        OPAQ_CHECK_OK(delta.status());
        QuerySession<Key> absorbed = std::move(head_session).value();
        OPAQ_CHECK_OK(absorbed.Absorb(delta->sample_list()));
        MemoryBlockDevice out;
        OPAQ_CHECK_OK(SaveSampleList(absorbed.sample_list(), &out));
        auto size = out.Size();
        OPAQ_CHECK_OK(size.status());
        std::vector<uint8_t> absorbed_bytes(*size);
        OPAQ_CHECK_OK(out.ReadAt(0, absorbed_bytes.data(),
                                 absorbed_bytes.size()));
        EXPECT_EQ(absorbed_bytes, reference)
            << c.Describe() << " Absorb(tail) vs from-scratch rebuild";
      }
    }
  }
}

TEST(BackendConformanceTest, FixedEdgeCases) {
  const SweepCase kCases[] = {
      // n, m, s, chunk, distribution, data seed, sketch seed
      {1, 64, 8, 16, Distribution::kConstant, 3, 11},    // single element
      {1000, 100, 10, 100, Distribution::kUniform, 4, 12},  // all aligned
      {999, 100, 10, 64, Distribution::kZipf, 5, 13},    // ragged run tail
      {1001, 100, 10, 7, Distribution::kNormal, 6, 14},  // tail of one
      {50, 100, 10, 8, Distribution::kSequential, 7, 15},  // single short run
      {4096, 512, 64, 512, Distribution::kSawtooth, 8, 16},  // chunk == run
      {4096, 512, 64, 4096, Distribution::kUniform, 9, 17},  // chunk > run
      {300, 64, 8, 1, Distribution::kReverseSequential, 10, 18},  // chunk 1
  };
  for (const SweepCase& c : kCases) ExpectAllBackendsAgree(c);
}

TEST(BackendConformanceTest, RandomizedSweep) {
  Xoshiro256 rng(20260729);
  for (int i = 0; i < 12; ++i) {
    SweepCase c;
    c.samples_per_run = uint64_t{1} << (3 + rng.NextBounded(3));  // 8..32
    c.run_size = c.samples_per_run * (1 + rng.NextBounded(40));
    // Mostly ragged tails; with probability 1/4 round down to an aligned n.
    c.n = 1 + rng.NextBounded(30000);
    if (rng.NextBounded(4) == 0 && c.n >= c.run_size) {
      c.n -= c.n % c.run_size;
    }
    c.chunk = 1 + rng.NextBounded(2 * c.run_size);
    const Distribution kDists[] = {
        Distribution::kUniform, Distribution::kZipf, Distribution::kNormal,
        Distribution::kSequential, Distribution::kSawtooth};
    c.distribution = kDists[rng.NextBounded(5)];
    c.data_seed = rng.Next();
    c.sketch_seed = rng.Next();
    SCOPED_TRACE(c.Describe());
    ExpectAllBackendsAgree(c);
  }
}

TEST(BackendConformanceTest, QuantilesAndExactPassAgreeAcrossBackends) {
  // Beyond sketch bytes: the user-visible answers — certified brackets and
  // exact second-pass values — must match across backends, with the second
  // pass itself streaming through each backend (sync and prefetching).
  DatasetSpec spec;
  spec.n = 30000;
  spec.distribution = Distribution::kZipf;
  spec.seed = 99;
  std::vector<Key> data = GenerateDataset<Key>(spec);
  Backends backends(data, 4, 600);  // chunk does not divide the run

  OpaqConfig config;
  config.run_size = 2500;
  config.samples_per_run = 125;
  OpaqSketch<Key> sketch(config);
  ASSERT_TRUE(sketch.Consume(*backends.plain).ok());
  OpaqEstimator<Key> reference = sketch.Finalize();
  auto reference_estimates = reference.EquiQuantiles(10);

  OpaqConfig striped_config = config;
  striped_config.io_mode = IoMode::kAsync;
  striped_config.prefetch_depth = 3;
  OpaqSketch<Key> striped_sketch(striped_config);
  ASSERT_TRUE(striped_sketch.Consume(*backends.striped).ok());
  auto striped_estimates = striped_sketch.Finalize().EquiQuantiles(10);

  ASSERT_EQ(striped_estimates.size(), reference_estimates.size());
  for (size_t i = 0; i < reference_estimates.size(); ++i) {
    EXPECT_EQ(striped_estimates[i].lower, reference_estimates[i].lower);
    EXPECT_EQ(striped_estimates[i].upper, reference_estimates[i].upper);
    EXPECT_EQ(striped_estimates[i].target_rank,
              reference_estimates[i].target_rank);
  }

  ReadOptions sync_options;
  sync_options.run_size = config.run_size;
  auto exact_plain = ExactQuantilesSecondPass(*backends.plain,
                                              reference_estimates,
                                              sync_options);
  ASSERT_TRUE(exact_plain.ok()) << exact_plain.status().ToString();
  for (IoMode mode : {IoMode::kSync, IoMode::kAsync}) {
    ReadOptions options = sync_options;
    options.io_mode = mode;
    options.prefetch_depth = 2;
    auto exact_striped = ExactQuantilesSecondPass(*backends.striped,
                                                  reference_estimates,
                                                  options);
    ASSERT_TRUE(exact_striped.ok()) << exact_striped.status().ToString();
    EXPECT_EQ(*exact_striped, *exact_plain) << IoModeName(mode);
  }
  // And the overlapped second pass over the plain file agrees too.
  ReadOptions async_options = sync_options;
  async_options.io_mode = IoMode::kAsync;
  auto exact_async = ExactQuantilesSecondPass(*backends.plain,
                                              reference_estimates,
                                              async_options);
  ASSERT_TRUE(exact_async.ok());
  EXPECT_EQ(*exact_async, *exact_plain);

  // Compressed extents: the sketch's brackets AND the §4 exact pass over
  // the packed layout — inline and with decode threads — agree with the
  // plain pipeline.
  OpaqSketch<Key> extent_sketch(striped_config);
  ASSERT_TRUE(extent_sketch.Consume(*backends.extent).ok());
  auto extent_estimates = extent_sketch.Finalize().EquiQuantiles(10);
  ASSERT_EQ(extent_estimates.size(), reference_estimates.size());
  for (size_t i = 0; i < reference_estimates.size(); ++i) {
    EXPECT_EQ(extent_estimates[i].lower, reference_estimates[i].lower);
    EXPECT_EQ(extent_estimates[i].upper, reference_estimates[i].upper);
  }
  for (IoMode mode : {IoMode::kSync, IoMode::kAsync}) {
    ReadOptions options = sync_options;
    options.io_mode = mode;
    options.prefetch_depth = 2;
    auto exact_extent = ExactQuantilesSecondPass(*backends.extent,
                                                 reference_estimates,
                                                 options);
    ASSERT_TRUE(exact_extent.ok()) << exact_extent.status().ToString();
    EXPECT_EQ(*exact_extent, *exact_plain) << "extent " << IoModeName(mode);
  }

  // Remote backend: a loopback node serving the striped layout must agree
  // on brackets AND on the exact pass — with the §4 second pass itself
  // streaming over the wire, sync and pipelined.
  NodeServer node;
  node.Export("data", backends.striped_file.get());
  node.Export<Key>("packed", backends.extent_file.get());
  ASSERT_TRUE(node.Start().ok());
  auto remote = RemoteRunProvider<Key>::Connect(node.address() + "/data");
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  OpaqSketch<Key> remote_sketch(config);
  ASSERT_TRUE(remote_sketch.Consume(*remote).ok());
  auto remote_estimates = remote_sketch.Finalize().EquiQuantiles(10);
  ASSERT_EQ(remote_estimates.size(), reference_estimates.size());
  for (size_t i = 0; i < reference_estimates.size(); ++i) {
    EXPECT_EQ(remote_estimates[i].lower, reference_estimates[i].lower);
    EXPECT_EQ(remote_estimates[i].upper, reference_estimates[i].upper);
  }
  for (IoMode mode : {IoMode::kSync, IoMode::kAsync}) {
    ReadOptions options = sync_options;
    options.io_mode = mode;
    options.prefetch_depth = 2;
    auto exact_remote = ExactQuantilesSecondPass(*remote,
                                                 reference_estimates,
                                                 options);
    ASSERT_TRUE(exact_remote.ok()) << exact_remote.status().ToString();
    EXPECT_EQ(*exact_remote, *exact_plain) << "remote " << IoModeName(mode);
  }

  // The §4 exact pass streaming wire-v4 PACKED extents, decoded client
  // side, lands on the same exact values.
  auto remote_packed =
      RemoteExtentProvider<Key>::Connect(node.address() + "/packed");
  ASSERT_TRUE(remote_packed.ok()) << remote_packed.status().ToString();
  for (IoMode mode : {IoMode::kSync, IoMode::kAsync}) {
    ReadOptions options = sync_options;
    options.io_mode = mode;
    options.prefetch_depth = 2;
    auto exact_packed = ExactQuantilesSecondPass(*remote_packed,
                                                 reference_estimates,
                                                 options);
    ASSERT_TRUE(exact_packed.ok()) << exact_packed.status().ToString();
    EXPECT_EQ(*exact_packed, *exact_plain)
        << "remote packed " << IoModeName(mode);
  }

  // Finally, the facade end to end: an Engine-built QuerySession over the
  // striped source answers the same batch — same brackets, same exact
  // values — as the direct plain-file pipeline above.
  auto session =
      Engine<Key>(striped_config,
                  Source<Key>::FromFile(backends.striped_file.get()))
          .Build();
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  auto batch = session->Query({
      QueryRequest<Key>::EquiQuantiles(10, /*exact=*/true),
  });
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  const auto& facade_estimates = batch->results[0].estimates;
  ASSERT_EQ(facade_estimates.size(), reference_estimates.size());
  for (size_t i = 0; i < reference_estimates.size(); ++i) {
    EXPECT_EQ(facade_estimates[i].lower, reference_estimates[i].lower);
    EXPECT_EQ(facade_estimates[i].upper, reference_estimates[i].upper);
  }
  EXPECT_EQ(batch->results[0].exact, *exact_plain);

  // And once more with the facade on the WIRE, under BOTH protocol
  // versions: wire v2 (node-side sampling + distributed §4 exact pass) and
  // forced v1 (range streaming) answer the identical batch, exact values
  // included — the wire moves the work OR the data, never the answers.
  NodeClientOptions client_options;
  for (uint16_t version : {uint16_t{2}, uint16_t{1}}) {
    client_options.max_wire_version = version;
    auto remote_source =
        Source<Key>::OpenRemote(node.address() + "/data", client_options);
    ASSERT_TRUE(remote_source.ok()) << remote_source.status().ToString();
    EXPECT_EQ(remote_source->remote_compute() != nullptr, version >= 2);
    auto remote_session =
        Engine<Key>(striped_config, *remote_source).Build();
    ASSERT_TRUE(remote_session.ok()) << remote_session.status().ToString();
    auto remote_batch = remote_session->Query({
        QueryRequest<Key>::EquiQuantiles(10, /*exact=*/true),
    });
    ASSERT_TRUE(remote_batch.ok()) << remote_batch.status().ToString();
    const auto& wire_estimates = remote_batch->results[0].estimates;
    ASSERT_EQ(wire_estimates.size(), reference_estimates.size());
    for (size_t i = 0; i < reference_estimates.size(); ++i) {
      EXPECT_EQ(wire_estimates[i].lower, reference_estimates[i].lower)
          << "wire v" << version;
      EXPECT_EQ(wire_estimates[i].upper, reference_estimates[i].upper)
          << "wire v" << version;
    }
    EXPECT_EQ(remote_batch->results[0].exact, *exact_plain)
        << "wire v" << version;
  }
}

TEST(BackendConformanceTest, ParallelHarnessAgreesOnStripedShards) {
  // The parallel sample phase over striped per-rank shards must answer
  // exactly like the plain-file run on the same logical shards.
  const int p = 3;
  std::vector<std::unique_ptr<Backends>> ranks;
  std::vector<const RunProvider<Key>*> plain_shards, striped_shards;
  for (int r = 0; r < p; ++r) {
    DatasetSpec spec;
    spec.n = 15000 + 777 * r;  // ragged everywhere
    spec.distribution = r % 2 ? Distribution::kZipf : Distribution::kUniform;
    spec.seed = 500 + r;
    ranks.push_back(std::make_unique<Backends>(GenerateDataset<Key>(spec),
                                               2 + r % 2, 333));
    plain_shards.push_back(ranks.back()->plain.get());
    striped_shards.push_back(ranks.back()->striped.get());
  }

  auto run = [&](const std::vector<const RunProvider<Key>*>& shards,
                 IoMode mode) {
    Cluster::Options cluster_options;
    cluster_options.num_processors = p;
    Cluster cluster(cluster_options);
    ParallelOpaqOptions options;
    options.config.run_size = 2048;
    options.config.samples_per_run = 128;
    options.config.io_mode = mode;
    options.config.prefetch_depth = 2;
    auto result = RunParallelOpaq(cluster, shards, options);
    OPAQ_CHECK_OK(result.status());
    return std::move(result).value();
  };

  ParallelOpaqResult<Key> reference = run(plain_shards, IoMode::kSync);
  for (IoMode mode : {IoMode::kSync, IoMode::kAsync}) {
    ParallelOpaqResult<Key> striped = run(striped_shards, mode);
    ASSERT_EQ(striped.estimates.size(), reference.estimates.size());
    for (size_t i = 0; i < reference.estimates.size(); ++i) {
      EXPECT_EQ(striped.estimates[i].lower, reference.estimates[i].lower);
      EXPECT_EQ(striped.estimates[i].upper, reference.estimates[i].upper);
    }
    EXPECT_EQ(striped.global_accounting.num_samples,
              reference.global_accounting.num_samples);
    EXPECT_EQ(striped.global_accounting.total_elements,
              reference.global_accounting.total_elements);
  }
}

}  // namespace
}  // namespace opaq
