// Tests for src/apps: equi-depth histograms, selectivity estimation, and
// range partitioning built on OPAQ estimates.

#include <gtest/gtest.h>

#include <numeric>

#include "apps/equi_depth_histogram.h"
#include "apps/range_partitioner.h"
#include "apps/selectivity.h"
#include "core/opaq.h"
#include "data/dataset.h"
#include "metrics/ground_truth.h"
#include "opaq/apps.h"
#include "opaq/engine.h"
#include "opaq/source.h"

namespace opaq {
namespace {

OpaqEstimator<uint64_t> MakeEstimator(const std::vector<uint64_t>& data,
                                      uint64_t m = 2000, uint64_t s = 200) {
  OpaqConfig config;
  config.run_size = m;
  config.samples_per_run = s;
  return EstimateQuantilesInMemory(data, config);
}

// ---------------------------------------------------------- Histogram ----

TEST(EquiDepthHistogramTest, BoundariesAreMonotone) {
  DatasetSpec spec;
  spec.n = 40000;
  spec.distribution = Distribution::kZipf;
  auto data = GenerateDataset<uint64_t>(spec);
  auto est = MakeEstimator(data);
  auto hist = EquiDepthHistogram<uint64_t>::Build(est, 10);
  EXPECT_EQ(hist.num_buckets(), 10);
  ASSERT_EQ(hist.boundaries().size(), 9u);
  for (size_t i = 1; i < hist.boundaries().size(); ++i) {
    EXPECT_LE(hist.boundaries()[i - 1].lower, hist.boundaries()[i].lower);
  }
  EXPECT_EQ(hist.NominalDepth(), 4000u);
}

TEST(EquiDepthHistogramTest, BucketDepthsNearNominal) {
  DatasetSpec spec;
  spec.n = 50000;
  spec.distribution = Distribution::kUniform;
  auto data = GenerateDataset<uint64_t>(spec);
  auto est = MakeEstimator(data);
  const int kBuckets = 10;
  auto hist = EquiDepthHistogram<uint64_t>::Build(est, kBuckets);
  std::vector<uint64_t> depth(kBuckets, 0);
  for (uint64_t v : data) ++depth[hist.BucketOf(v)];
  for (int b = 0; b < kBuckets; ++b) {
    // Each bucket within nominal +- 2*budget (+ties slop).
    EXPECT_NEAR(static_cast<double>(depth[b]),
                static_cast<double>(hist.NominalDepth()),
                2.0 * hist.max_rank_error() + 1)
        << "bucket " << b;
  }
}

TEST(EquiDepthHistogramTest, BucketOfRoutesByBoundaries) {
  std::vector<uint64_t> data(10000);
  std::iota(data.begin(), data.end(), 0);
  auto est = MakeEstimator(data, 1000, 100);
  auto hist = EquiDepthHistogram<uint64_t>::Build(est, 4);
  EXPECT_EQ(hist.BucketOf(0), 0);
  EXPECT_EQ(hist.BucketOf(9999), 3);
  int mid_bucket = hist.BucketOf(5000);
  EXPECT_GE(mid_bucket, 1);
  EXPECT_LE(mid_bucket, 2);
}

// --------------------------------------------------------- Selectivity ----

TEST(SelectivityTest, BracketsContainTrueCount) {
  DatasetSpec spec;
  spec.n = 60000;
  spec.distribution = Distribution::kZipf;
  auto data = GenerateDataset<uint64_t>(spec);
  auto est = MakeEstimator(data);
  GroundTruth<uint64_t> truth(data);

  Xoshiro256 rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    uint64_t a = data[rng.NextBounded(data.size())];
    uint64_t b = data[rng.NextBounded(data.size())];
    if (b < a) std::swap(a, b);
    auto sel = EstimateRangeSelectivity(est, a, b);
    uint64_t true_count = truth.RankLe(b) - truth.RankLt(a);
    EXPECT_LE(sel.min_count, true_count) << "[" << a << "," << b << "]";
    EXPECT_GE(sel.max_count, true_count) << "[" << a << "," << b << "]";
    EXPECT_GE(sel.point_fraction, 0.0);
    EXPECT_LE(sel.point_fraction, 1.0);
  }
}

TEST(SelectivityTest, BracketWidthBoundedByBudget) {
  std::vector<uint64_t> data(50000);
  std::iota(data.begin(), data.end(), 0);
  auto est = MakeEstimator(data);
  auto sel = EstimateRangeSelectivity(est, uint64_t{10000}, uint64_t{30000});
  // Width of the bracket <= 2 * (per-value slack) which is ~2*n/s.
  EXPECT_LE(sel.max_count - sel.min_count,
            4 * est.max_rank_error() + 4 * est.sample_list()
                                                .accounting()
                                                .subrun_size);
  // And the point estimate lands near the true 20001.
  EXPECT_NEAR(sel.point_fraction, 0.4, 0.02);
}

TEST(SelectivityTest, OneSidedPredicate) {
  std::vector<uint64_t> data(10000);
  std::iota(data.begin(), data.end(), 0);
  auto est = MakeEstimator(data, 1000, 100);
  GroundTruth<uint64_t> truth(data);
  auto sel = EstimateAtMostSelectivity(est, uint64_t{2500});
  EXPECT_LE(sel.min_count, truth.RankLe(2500));
  EXPECT_GE(sel.max_count, truth.RankLe(2500));
  EXPECT_NEAR(sel.point_fraction, 0.25, 0.05);
}

TEST(SelectivityTest, EmptyRange) {
  std::vector<uint64_t> data(10000);
  std::iota(data.begin(), data.end(), 5000);
  auto est = MakeEstimator(data, 1000, 100);
  auto sel = EstimateRangeSelectivity(est, uint64_t{0}, uint64_t{100});
  EXPECT_EQ(sel.min_count, 0u);
  // max_count may be small but nonzero (slack), bounded by the budget.
  EXPECT_LE(sel.max_count, 2 * est.max_rank_error());
}

// --------------------------------------------------------- Partitioner ----

TEST(RangePartitionerTest, PartitionSizesWithinCertifiedBound) {
  DatasetSpec spec;
  spec.n = 80000;
  spec.distribution = Distribution::kUniform;
  spec.duplicate_fraction = 0.0;
  auto data = GenerateDataset<uint64_t>(spec);
  auto est = MakeEstimator(data);
  for (int parts : {2, 4, 8, 16}) {
    auto partitioner = RangePartitioner<uint64_t>::Build(est, parts);
    auto counts = partitioner.CountPartitionSizes(data);
    ASSERT_EQ(counts.size(), static_cast<size_t>(parts));
    uint64_t total = 0;
    for (uint64_t c : counts) {
      EXPECT_LE(c, partitioner.MaxPartitionSize()) << parts << " parts";
      total += c;
    }
    EXPECT_EQ(total, data.size());
  }
}

TEST(RangePartitionerTest, SplittersAreSortedDataValues) {
  DatasetSpec spec;
  spec.n = 30000;
  spec.distribution = Distribution::kZipf;
  auto data = GenerateDataset<uint64_t>(spec);
  auto est = MakeEstimator(data);
  auto partitioner = RangePartitioner<uint64_t>::Build(est, 8);
  ASSERT_EQ(partitioner.splitters().size(), 7u);
  EXPECT_TRUE(std::is_sorted(partitioner.splitters().begin(),
                             partitioner.splitters().end()));
  GroundTruth<uint64_t> truth(data);
  for (uint64_t s : partitioner.splitters()) {
    EXPECT_GT(truth.CountEqual(s), 0u) << "splitter must be a data value";
  }
}

TEST(RangePartitionerTest, PartitionOfIsConsistentWithSplitters) {
  std::vector<uint64_t> data(10000);
  std::iota(data.begin(), data.end(), 0);
  auto est = MakeEstimator(data, 1000, 100);
  auto partitioner = RangePartitioner<uint64_t>::Build(est, 4);
  EXPECT_EQ(partitioner.PartitionOf(0), 0);
  EXPECT_EQ(partitioner.PartitionOf(9999), 3);
  for (size_t i = 0; i < partitioner.splitters().size(); ++i) {
    // A value equal to splitter i goes to partition <= i.
    EXPECT_LE(partitioner.PartitionOf(partitioner.splitters()[i]),
              static_cast<int>(i));
  }
}

TEST(RangePartitionerTest, ExternalSortUseCase) {
  // The paper's external-sort story: partitions small enough for memory.
  DatasetSpec spec;
  spec.n = 100000;
  spec.distribution = Distribution::kNormal;
  spec.duplicate_fraction = 0.0;
  auto data = GenerateDataset<uint64_t>(spec);
  auto est = MakeEstimator(data, 10000, 1000);
  const uint64_t memory_budget = 15000;  // elements per partition buffer
  const int parts = 10;                  // 100000/10 + slack < 15000
  auto partitioner = RangePartitioner<uint64_t>::Build(est, parts);
  ASSERT_LE(partitioner.MaxPartitionSize(), memory_budget);
  auto counts = partitioner.CountPartitionSizes(data);
  for (uint64_t c : counts) EXPECT_LE(c, memory_budget);
}

// ----------------------- Exact ground truth, through the facade session ----

// Builds the facade session the apps ride on; the data stays around for
// exact scoring.
QuerySession<uint64_t> MakeSession(const std::vector<uint64_t>& data,
                                   uint64_t m = 2000, uint64_t s = 200) {
  OpaqConfig config;
  config.run_size = m;
  config.samples_per_run = s;
  auto session =
      Engine<uint64_t>(config, Source<uint64_t>::FromVector(data)).Build();
  OPAQ_CHECK_OK(session.status());
  return std::move(session).value();
}

TEST(EquiDepthHistogramTest, DepthBracketsContainTrueDepths) {
  // The satellite property: each bucket's certified depth bracket must
  // contain the depth actually realized on the data — across duplicate-free
  // distributions (value routing splits ties one-sidedly, so only distinct
  // data carries the certificate; see BucketDepthBracket's contract).
  for (Distribution dist : {Distribution::kUniform, Distribution::kNormal,
                            Distribution::kSequential}) {
    DatasetSpec spec;
    spec.n = 60000;
    spec.distribution = dist;
    spec.duplicate_fraction = 0.0;
    spec.seed = 21;
    auto data = GenerateDataset<uint64_t>(spec);
    auto session = MakeSession(data);
    for (int buckets : {4, 10, 16}) {
      auto histogram = BuildEquiDepthHistogram(session, buckets);
      ASSERT_TRUE(histogram.ok());
      std::vector<uint64_t> depth(buckets, 0);
      for (uint64_t v : data) ++depth[histogram->BucketOf(v)];
      for (int b = 0; b < buckets; ++b) {
        auto bracket = histogram->BucketDepthBracket(b);
        EXPECT_LE(bracket.min_depth, depth[b])
            << DistributionName(dist) << " B=" << buckets << " bucket " << b;
        EXPECT_GE(bracket.max_depth, depth[b])
            << DistributionName(dist) << " B=" << buckets << " bucket " << b;
        EXPECT_LE(bracket.max_depth - bracket.min_depth,
                  4 * (histogram->max_rank_error() + 1))
            << "bracket should stay within the paper's 2*budget per side";
      }
    }
  }
}

TEST(RangePartitionerTest, ShardSizesWithinMaxRankError) {
  // The satellite property: every realized shard size stays within the
  // session's max_rank_error budget of the nominal n/P (one splitter off by
  // at most max_rank_error on each side, +1 rounding slack per boundary).
  DatasetSpec spec;
  spec.n = 70000;
  spec.distribution = Distribution::kUniform;
  spec.duplicate_fraction = 0.0;
  spec.seed = 33;
  auto data = GenerateDataset<uint64_t>(spec);
  auto session = MakeSession(data);
  for (int parts : {2, 5, 8}) {
    auto partitioner = BuildRangePartitioner(session, parts);
    ASSERT_TRUE(partitioner.ok());
    auto counts = partitioner->CountPartitionSizes(data);
    ASSERT_EQ(counts.size(), static_cast<size_t>(parts));
    const uint64_t nominal = spec.n / static_cast<uint64_t>(parts);
    const uint64_t slack = 2 * (session.max_rank_error() + 1);
    uint64_t total = 0;
    for (int part = 0; part < parts; ++part) {
      EXPECT_NEAR(static_cast<double>(counts[part]),
                  static_cast<double>(nominal), static_cast<double>(slack))
          << parts << " parts, shard " << part;
      EXPECT_LE(counts[part], partitioner->MaxPartitionSize());
      total += counts[part];
    }
    EXPECT_EQ(total, spec.n);
  }
}

TEST(SelectivityTest, FacadeBracketsMatchGroundTruthEverywhere) {
  // Batched-session selectivity vs exact ground truth, including the
  // boundary predicates (min/max values, single point, full range).
  DatasetSpec spec;
  spec.n = 40000;
  spec.distribution = Distribution::kZipf;
  spec.seed = 17;
  auto data = GenerateDataset<uint64_t>(spec);
  auto session = MakeSession(data);
  GroundTruth<uint64_t> truth(data);
  const uint64_t lo_value = truth.Quantile(1e-9);  // min
  const uint64_t hi_value = truth.Quantile(1.0);   // max
  const std::pair<uint64_t, uint64_t> predicates[] = {
      {lo_value, hi_value}, {lo_value, lo_value}, {hi_value, hi_value},
      {1, 100},             {7, 7},               {100, 50000},
  };
  for (const auto& p : predicates) {
    auto sel = EstimateRangeSelectivity(session, p.first, p.second);
    ASSERT_TRUE(sel.ok());
    const uint64_t true_count = truth.RankLe(p.second) - truth.RankLt(p.first);
    EXPECT_LE(sel->min_count, true_count)
        << "[" << p.first << ", " << p.second << "]";
    EXPECT_GE(sel->max_count, true_count)
        << "[" << p.first << ", " << p.second << "]";

    auto at_most = EstimateAtMostSelectivity(session, p.second);
    ASSERT_TRUE(at_most.ok());
    EXPECT_LE(at_most->min_count, truth.RankLe(p.second));
    EXPECT_GE(at_most->max_count, truth.RankLe(p.second));
  }
}

}  // namespace
}  // namespace opaq
