// Fault injection for the network path: dying nodes, dying disks behind
// nodes, truncated and corrupted frames, refused connections, key-type
// skew. Every failure must surface as a sticky `Status` from the client —
// no hangs (the suite itself would time out), no aborts, and runs wholly
// before the failure still delivered. The node, in turn, must survive
// malformed clients.

#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/dataset.h"
#include "io/block_device.h"
#include "io/data_file.h"
#include "io/faulty_device.h"
#include "net/client.h"
#include "net/node_server.h"
#include "net/remote_source.h"
#include "opaq/engine.h"
#include "opaq/source.h"

namespace opaq {
namespace {

using Key = uint64_t;

/// A node whose dataset sits on a FaultyDevice.
struct FaultyNode {
  std::vector<Key> data;
  std::unique_ptr<FaultyDevice> device;
  std::unique_ptr<TypedDataFile<Key>> file;
  NodeServer server;

  FaultyNode(uint64_t n, FaultyDevice::Options fault_options,
             NodeServerOptions server_options = {})
      : server(server_options) {
    DatasetSpec spec;
    spec.n = n;
    spec.seed = 5;
    data = GenerateDataset<Key>(spec);
    auto inner = std::make_unique<MemoryBlockDevice>();
    OPAQ_CHECK_OK(WriteDataset(data, inner.get()));
    device = std::make_unique<FaultyDevice>(std::move(inner), fault_options);
    auto opened = TypedDataFile<Key>::Open(device.get());  // device read #1
    OPAQ_CHECK_OK(opened.status());
    file = std::make_unique<TypedDataFile<Key>>(std::move(opened).value());
    server.Export("data", file.get());
    OPAQ_CHECK_OK(server.Start());
  }

  std::string spec() const { return server.address() + "/data"; }
};

FaultyDevice::Options FailReadAt(uint64_t n) {
  FaultyDevice::Options options;
  options.fail_read_at = n;
  return options;
}

/// A fake "node" that runs `script` against the first accepted connection
/// — for injecting protocol-level garbage a real NodeServer never emits.
class ScriptedNode {
 public:
  explicit ScriptedNode(std::function<void(TcpConnection&)> script) {
    auto listener = TcpListener::Bind("127.0.0.1", 0);
    OPAQ_CHECK_OK(listener.status());
    listener_ = std::move(listener).value();
    thread_ = std::thread([this, script = std::move(script)] {
      auto conn = listener_.Accept();
      if (conn.ok()) script(*conn);
    });
  }

  ~ScriptedNode() {
    listener_.ShutdownNow();
    if (thread_.joinable()) thread_.join();
  }

  uint16_t port() const { return listener_.port(); }

 private:
  TcpListener listener_;
  std::thread thread_;
};

/// Reads one full frame off `conn` (a scripted node consuming the client's
/// request before answering with garbage).
void ConsumeFrame(TcpConnection& conn) {
  WireFrameHeader header;
  OPAQ_CHECK_OK(conn.ReadFull(&header, sizeof(header)));
  std::vector<uint8_t> payload(header.payload_len);
  if (!payload.empty()) {
    OPAQ_CHECK_OK(conn.ReadFull(payload.data(), payload.size()));
  }
}

TEST(NetFailureTest, NodeDiskErrorSurfacesAsStickyStatus) {
  // Device read #1 was the header; the 3rd data read fails, so with one
  // slice per run, runs 1 and 2 arrive intact and run 3 reports the node's
  // disk error — same contract as every local backend.
  for (IoMode mode : {IoMode::kSync, IoMode::kAsync}) {
    FaultyNode node(10000, FailReadAt(4));
    auto provider = RemoteRunProvider<Key>::Connect(node.spec());
    ASSERT_TRUE(provider.ok()) << provider.status().ToString();
    ReadOptions options;
    options.run_size = 1000;  // slice == run (default read bound is larger)
    options.io_mode = mode;
    auto source = provider->OpenRuns(options);
    std::vector<Key> buffer;
    for (int run = 0; run < 2; ++run) {
      auto more = source->NextRun(&buffer);
      ASSERT_TRUE(more.ok()) << IoModeName(mode);
      ASSERT_TRUE(*more);
      EXPECT_EQ(buffer, std::vector<Key>(node.data.begin() + run * 1000,
                                         node.data.begin() + (run + 1) * 1000))
          << IoModeName(mode);
    }
    auto failed = source->NextRun(&buffer);
    ASSERT_FALSE(failed.ok()) << IoModeName(mode);
    EXPECT_EQ(failed.status().code(), StatusCode::kIoError);
    EXPECT_TRUE(buffer.empty());
    // Sticky: every later call repeats the failure.
    auto again = source->NextRun(&buffer);
    EXPECT_EQ(again.status().code(), StatusCode::kIoError);

    // The fault was one-shot and per-request: the node survives it, and a
    // fresh stream (new connection) reads everything.
    auto retry = provider->OpenRuns(options);
    uint64_t total = 0;
    for (;;) {
      auto more = retry->NextRun(&buffer);
      ASSERT_TRUE(more.ok());
      if (!*more) break;
      total += buffer.size();
    }
    EXPECT_EQ(total, node.data.size());
  }
}

TEST(NetFailureTest, EngineSurfacesNodeDiskError) {
  FaultyNode node(10000, FailReadAt(3));
  auto source = Source<Key>::OpenRemote(node.spec());
  ASSERT_TRUE(source.ok());
  OpaqConfig config;
  config.run_size = 1000;
  config.samples_per_run = 100;
  config.io_mode = IoMode::kAsync;
  auto session = Engine<Key>(config, *source).Build();
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), StatusCode::kIoError);
}

TEST(NetFailureTest, NodeDeathMidStreamSurfacesWithoutHanging) {
  // Small slices so the stream is far from fully buffered when the node
  // dies mid-run.
  NodeServerOptions small;
  small.max_read_bytes = 256 * sizeof(Key);
  auto slow_node = std::make_unique<FaultyNode>(200000,
                                                FaultyDevice::Options(), small);
  auto provider = RemoteRunProvider<Key>::Connect(slow_node->spec());
  ASSERT_TRUE(provider.ok());
  ReadOptions options;
  options.run_size = 4096;
  options.io_mode = IoMode::kAsync;
  options.prefetch_depth = 2;
  auto source = provider->OpenRuns(options);
  std::vector<Key> buffer;
  auto first = source->NextRun(&buffer);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(*first);

  slow_node->server.Stop();  // kill the node mid-run

  // The already-pipelined prefix may still arrive; after that the death
  // must surface as a sticky error — and never a hang.
  Status failure;
  for (int i = 0; i < 100; ++i) {
    auto more = source->NextRun(&buffer);
    if (!more.ok()) {
      failure = more.status();
      break;
    }
    ASSERT_TRUE(*more) << "stream ended cleanly despite the node dying";
  }
  EXPECT_EQ(failure.code(), StatusCode::kIoError) << failure.ToString();
  auto sticky = source->NextRun(&buffer);
  EXPECT_EQ(sticky.status().code(), StatusCode::kIoError);
}

TEST(NetFailureTest, AbandonedStreamShutsDownCleanly) {
  // Destroying a streaming source mid-flight (data still pending on both
  // the wire and the channel) must join its thread without hanging.
  FaultyNode node(100000, FaultyDevice::Options());
  auto provider = RemoteRunProvider<Key>::Connect(node.spec());
  ASSERT_TRUE(provider.ok());
  ReadOptions options;
  options.run_size = 1024;
  options.io_mode = IoMode::kAsync;
  options.prefetch_depth = 4;
  auto source = provider->OpenRuns(options);
  std::vector<Key> buffer;
  auto more = source->NextRun(&buffer);
  ASSERT_TRUE(more.ok());
  source.reset();  // abandon with ~97 runs unread
}

TEST(NetFailureTest, ConnectionRefusedIsCleanStatus) {
  // Grab an ephemeral port, then close it: connecting must fail fast.
  auto listener = TcpListener::Bind("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  const uint16_t dead_port = listener->port();
  listener->Close();
  auto source = Source<Key>::OpenRemote(
      "127.0.0.1:" + std::to_string(dead_port) + "/data");
  ASSERT_FALSE(source.ok());
  EXPECT_EQ(source.status().code(), StatusCode::kIoError);
}

TEST(NetFailureTest, UnknownDatasetIsNotFound) {
  FaultyNode node(100, FaultyDevice::Options());
  auto source = Source<Key>::OpenRemote(node.server.address() + "/missing");
  ASSERT_FALSE(source.ok());
  EXPECT_EQ(source.status().code(), StatusCode::kNotFound);
}

TEST(NetFailureTest, KeyTypeSkewIsRejectedAtHandshake) {
  // A u32 dataset served to a u64 client: caught at Connect, not at read.
  std::vector<uint32_t> data(100, 7);
  MemoryBlockDevice device;
  OPAQ_CHECK_OK(WriteDataset(data, &device));
  auto file = TypedDataFile<uint32_t>::Open(&device);
  ASSERT_TRUE(file.ok());
  NodeServer server;
  server.Export("data", &*file);
  ASSERT_TRUE(server.Start().ok());
  auto provider =
      RemoteRunProvider<uint64_t>::Connect(server.address() + "/data");
  ASSERT_FALSE(provider.ok());
  EXPECT_EQ(provider.status().code(), StatusCode::kInvalidArgument);
}

TEST(NetFailureTest, TruncatedHeaderFromNode) {
  ScriptedNode fake([](TcpConnection& conn) {
    ConsumeFrame(conn);  // the PING
    WireFrameHeader header;
    header.op = static_cast<uint16_t>(WireOp::kPong);
    conn.WriteFull(&header, sizeof(header) / 2);  // half a header, then EOF
  });
  auto client = NodeClient::Connect("127.0.0.1", fake.port());
  ASSERT_TRUE(client.ok());
  Status ping = client->Ping();
  ASSERT_FALSE(ping.ok());
  EXPECT_EQ(ping.code(), StatusCode::kIoError);
  EXPECT_NE(ping.message().find("closed"), std::string::npos);
}

TEST(NetFailureTest, TruncatedPayloadFromNode) {
  ScriptedNode fake([](TcpConnection& conn) {
    ConsumeFrame(conn);
    // A valid header promising 100 payload bytes; only 10 follow.
    std::vector<uint8_t> payload(100, 3);
    std::vector<uint8_t> frame = EncodeFrame(WireOp::kPong, payload);
    conn.WriteFull(frame.data(), sizeof(WireFrameHeader) + 10);
  });
  auto client = NodeClient::Connect("127.0.0.1", fake.port());
  ASSERT_TRUE(client.ok());
  Status ping = client->Ping();
  ASSERT_FALSE(ping.ok());
  EXPECT_EQ(ping.code(), StatusCode::kIoError);
}

TEST(NetFailureTest, CorruptedCrcFromNode) {
  ScriptedNode fake([](TcpConnection& conn) {
    ConsumeFrame(conn);
    std::vector<uint8_t> frame =
        EncodeFrame(WireOp::kPong, std::vector<uint8_t>{1, 2, 3});
    frame[12] ^= 0xFF;  // flip a CRC byte
    conn.WriteFull(frame.data(), frame.size());
  });
  auto client = NodeClient::Connect("127.0.0.1", fake.port());
  ASSERT_TRUE(client.ok());
  Status ping = client->Ping();
  ASSERT_FALSE(ping.ok());
  EXPECT_NE(ping.message().find("CRC"), std::string::npos)
      << ping.ToString();
}

TEST(NetFailureTest, ForeignMagicFromNode) {
  ScriptedNode fake([](TcpConnection& conn) {
    ConsumeFrame(conn);
    std::vector<uint8_t> garbage(sizeof(WireFrameHeader), 0xAB);
    conn.WriteFull(garbage.data(), garbage.size());
  });
  auto client = NodeClient::Connect("127.0.0.1", fake.port());
  ASSERT_TRUE(client.ok());
  Status ping = client->Ping();
  ASSERT_FALSE(ping.ok());
  EXPECT_NE(ping.message().find("magic"), std::string::npos);
}

TEST(NetFailureTest, CorruptRangeDataSurfacesThroughRunSource) {
  // A full scripted handshake + one poisoned RANGE_DATA: the run stream
  // must latch the CRC failure, not deliver corrupt elements.
  ScriptedNode fake([](TcpConnection& conn) {
    ConsumeFrame(conn);  // OPEN_DATASET
    WireDatasetInfo info;
    info.key_type = static_cast<uint32_t>(KeyTraits<Key>::kType);
    info.element_size = sizeof(Key);
    info.element_count = 64;
    info.max_read_elements = 64;
    std::vector<uint8_t> frame =
        EncodeFrame(WireOp::kDatasetInfo, &info, sizeof(info));
    conn.WriteFull(frame.data(), frame.size());
  });
  // The provider handshake uses its own connection; the run stream then
  // dials a second one — so scripted single-connection tests drive the
  // client layer directly instead.
  auto client = NodeClient::Connect("127.0.0.1", fake.port());
  ASSERT_TRUE(client.ok());
  auto info = client->OpenDataset("data");
  ASSERT_TRUE(info.ok()) << info.status().ToString();

  ScriptedNode fake2([](TcpConnection& conn) {
    ConsumeFrame(conn);  // READ_RANGE
    std::vector<uint8_t> payload(64 * sizeof(Key), 5);
    std::vector<uint8_t> frame = EncodeFrame(WireOp::kRangeData, payload);
    frame[frame.size() - 1] ^= 0x01;  // corrupt the last payload byte
    conn.WriteFull(frame.data(), frame.size());
  });
  auto client2 = NodeClient::Connect("127.0.0.1", fake2.port());
  ASSERT_TRUE(client2.ok());
  std::vector<Key> values(64);
  Status read = client2->ReadRange("data", 0, 64, values.data(),
                                   values.size() * sizeof(Key));
  ASSERT_FALSE(read.ok());
  EXPECT_NE(read.message().find("CRC"), std::string::npos);
}

TEST(NetFailureTest, NodeClampsReadBoundToAtLeastOneElement) {
  // A read bound below one element must clamp to 1, never advertise 0 —
  // a zero bound would tell clients no read can ever succeed (and a
  // conforming client rejects it, see below).
  NodeServerOptions tiny;
  tiny.max_read_bytes = 1;  // below any element size
  FaultyNode node(50, FaultyDevice::Options(), tiny);
  auto client = NodeClient::Connect("127.0.0.1", node.server.port());
  ASSERT_TRUE(client.ok());
  auto info = client->OpenDataset("data");
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->max_read_elements, 1u);
  Key value = 0;
  ASSERT_TRUE(client->ReadRange("data", 7, 1, &value, sizeof(value)).ok());
  EXPECT_EQ(value, node.data[7]);
}

TEST(NetFailureTest, ClientRejectsZeroReadBoundFromNode) {
  // The other side of the clamp: a (broken or hostile) node advertising
  // max_read_elements == 0 must be rejected at OpenDataset with a clear
  // Status — the slice loop would otherwise divide the stream into
  // zero-element requests forever.
  ScriptedNode fake([](TcpConnection& conn) {
    ConsumeFrame(conn);  // OPEN_DATASET
    WireDatasetInfo info;
    info.key_type = static_cast<uint32_t>(KeyTraits<Key>::kType);
    info.element_size = sizeof(Key);
    info.element_count = 100;
    info.max_read_elements = 0;
    std::vector<uint8_t> frame =
        EncodeFrame(WireOp::kDatasetInfo, &info, sizeof(info));
    conn.WriteFull(frame.data(), frame.size());
  });
  auto client = NodeClient::Connect("127.0.0.1", fake.port());
  ASSERT_TRUE(client.ok());
  auto info = client->OpenDataset("data");
  ASSERT_FALSE(info.ok());
  EXPECT_EQ(info.status().code(), StatusCode::kIoError);
  EXPECT_NE(info.status().message().find("geometry"), std::string::npos);
}

TEST(NetFailureTest, NodeSurvivesGarbageClient) {
  FaultyNode node(1000, FaultyDevice::Options());
  {
    // A peer that speaks garbage: the node answers with an error frame (or
    // just hangs up) and MUST keep serving everyone else.
    auto conn = TcpConnection::Connect("127.0.0.1", node.server.port(), 5);
    ASSERT_TRUE(conn.ok());
    std::vector<uint8_t> garbage(64, 0xEE);
    ASSERT_TRUE(conn->WriteFull(garbage.data(), garbage.size()).ok());
    // Drain whatever the node answers until it hangs up on us.
    uint8_t sink[256];
    while (conn->ReadFull(sink, sizeof(sink)).ok()) {
    }
  }
  auto client = NodeClient::Connect("127.0.0.1", node.server.port());
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(client->Ping().ok());
  auto info = client->OpenDataset("data");
  EXPECT_TRUE(info.ok()) << info.status().ToString();
}

TEST(NetFailureTest, OversizedFrameFromClientClosesConnection) {
  FaultyNode node(1000, FaultyDevice::Options());
  auto conn = TcpConnection::Connect("127.0.0.1", node.server.port(), 5);
  ASSERT_TRUE(conn.ok());
  WireFrameHeader header;
  header.op = static_cast<uint16_t>(WireOp::kReadRange);
  header.payload_len = kMaxWirePayload + 1;  // allocation-bomb claim
  ASSERT_TRUE(conn->WriteFull(&header, sizeof(header)).ok());
  // The node must answer with an error frame and hang up — never attempt
  // the allocation. (ReceiveFrame fails either on the error frame's
  // content or on the close, both acceptable here; the real assertion is
  // the node's survival below.)
  auto answer = ReceiveExpected(*conn, WireOp::kRangeData);
  EXPECT_FALSE(answer.ok());
  auto client = NodeClient::Connect("127.0.0.1", node.server.port());
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(client->Ping().ok());
}

}  // namespace
}  // namespace opaq
