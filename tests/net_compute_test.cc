// The v2 compute path end to end: version negotiation (v2 <-> v2, v2 <->
// v1-capped node, v1-forced client), node-side sampling and §4 exact scans
// answering byte-identically to the local pipeline over the same data,
// Unimplemented fallback for untyped exports, hostile/corrupt compute
// payloads surfacing as Status (never aborts), node death mid-RPC, and the
// whole point of the extension: an Engine over v2 sources moving an order
// of magnitude fewer bytes than v1 range streaming.

#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/exact.h"
#include "core/opaq.h"
#include "data/dataset.h"
#include "io/block_device.h"
#include "io/data_file.h"
#include "io/striped_data_file.h"
#include "io/striped_run_source.h"
#include "net/client.h"
#include "net/node_server.h"
#include "net/remote_compute.h"
#include "net/wire_compute.h"
#include "opaq/engine.h"
#include "opaq/query.h"
#include "opaq/source.h"

namespace opaq {
namespace {

using Key = uint64_t;

/// One loopback compute node: typed plain export "data" (plus a striped
/// export "striped" when `stripes` > 1, and the same file re-exported
/// untyped as "raw" — the node that can only serve bytes for it).
struct ComputeNode {
  std::vector<Key> data;
  std::vector<std::unique_ptr<MemoryBlockDevice>> devices;
  std::unique_ptr<TypedDataFile<Key>> file;
  std::unique_ptr<DataFile> untyped;
  std::unique_ptr<StripedDataFile<Key>> striped;
  NodeServer server;

  explicit ComputeNode(uint64_t n, NodeServerOptions options = {},
                       int stripes = 1)
      : server(options) {
    DatasetSpec spec;
    spec.n = n;
    spec.seed = 91;
    spec.distribution = Distribution::kZipf;
    data = GenerateDataset<Key>(spec);
    devices.push_back(std::make_unique<MemoryBlockDevice>());
    OPAQ_CHECK_OK(WriteDataset(data, devices.back().get()));
    auto opened = TypedDataFile<Key>::Open(devices.back().get());
    OPAQ_CHECK_OK(opened.status());
    file = std::make_unique<TypedDataFile<Key>>(std::move(opened).value());
    server.Export("data", file.get());
    auto raw = DataFile::Open(devices.back().get());
    OPAQ_CHECK_OK(raw.status());
    untyped = std::make_unique<DataFile>(std::move(raw).value());
    server.Export("raw", static_cast<const DataFile*>(untyped.get()));
    if (stripes > 1) {
      std::vector<BlockDevice*> raw_devices;
      for (int s = 0; s < stripes; ++s) {
        devices.push_back(std::make_unique<MemoryBlockDevice>());
        raw_devices.push_back(devices.back().get());
      }
      auto written = WriteStriped(data, std::move(raw_devices), 333);
      OPAQ_CHECK_OK(written.status());
      striped = std::make_unique<StripedDataFile<Key>>(
          std::move(written).value());
      server.Export("striped", striped.get());
    }
    OPAQ_CHECK_OK(server.Start());
  }

  RemoteSpec spec(const std::string& name = "data") const {
    auto parsed = ParseRemoteSpec(server.address() + "/" + name);
    OPAQ_CHECK_OK(parsed.status());
    return std::move(parsed).value();
  }
};

OpaqConfig SmallConfig(IoMode io_mode = IoMode::kSync) {
  OpaqConfig config;
  config.run_size = 1000;
  config.samples_per_run = 50;
  config.seed = 7;
  config.io_mode = io_mode;
  config.prefetch_depth = 2;
  return config;
}

SampleList<Key> LocalList(const RunProvider<Key>& provider,
                          const OpaqConfig& config) {
  OpaqSketch<Key> sketch(config);
  OPAQ_CHECK_OK(sketch.Consume(provider));
  return sketch.FinalizeSampleList();
}

void ExpectListsEqual(const SampleList<Key>& got, const SampleList<Key>& want,
                      const std::string& what) {
  EXPECT_EQ(got.samples(), want.samples()) << what;
  EXPECT_EQ(got.accounting().subrun_size, want.accounting().subrun_size)
      << what;
  EXPECT_EQ(got.accounting().num_runs, want.accounting().num_runs) << what;
  EXPECT_EQ(got.accounting().num_samples, want.accounting().num_samples)
      << what;
  EXPECT_EQ(got.accounting().num_uncovered, want.accounting().num_uncovered)
      << what;
  EXPECT_EQ(got.accounting().total_elements,
            want.accounting().total_elements)
      << what;
}

// ------------------------------------------------ version negotiation ----

TEST(NegotiateWireVersionTest, DefaultPeersSpeakTheNewestVersion) {
  ComputeNode node(100);
  auto version = NegotiateWireVersion(node.spec(), NodeClientOptions());
  ASSERT_TRUE(version.ok()) << version.status().ToString();
  EXPECT_EQ(*version, kMaxWireVersion);
  EXPECT_GE(*version, kComputeWireVersion);  // compute ops stay available
}

TEST(NegotiateWireVersionTest, V1CappedNodeNegotiatesDownToV1) {
  // A node capped at v1 rejects the version-2 kHello header itself —
  // exactly what a real pre-compute build does — and the client reads that
  // as "speak v1", not as an error.
  NodeServerOptions options;
  options.max_wire_version = 1;
  ComputeNode node(100, options);
  auto version = NegotiateWireVersion(node.spec(), NodeClientOptions());
  ASSERT_TRUE(version.ok()) << version.status().ToString();
  EXPECT_EQ(*version, 1);
}

TEST(NegotiateWireVersionTest, V1ForcedClientSkipsTheProbe) {
  // With the client capped at v1 no probe is sent at all — negotiation
  // succeeds even against a port nobody listens on.
  auto listener = TcpListener::Bind("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  const uint16_t dead_port = listener->port();
  listener->Close();
  RemoteSpec spec;
  spec.host = "127.0.0.1";
  spec.port = dead_port;
  spec.dataset = "data";
  NodeClientOptions v1_only;
  v1_only.max_wire_version = 1;
  auto version = NegotiateWireVersion(spec, v1_only);
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(*version, 1);
  // A v2 client, by contrast, must surface the unreachable node.
  EXPECT_FALSE(NegotiateWireVersion(spec, NodeClientOptions()).ok());
}

TEST(NegotiateWireVersionTest, HelloRoundTripReportsNodeMax) {
  ComputeNode node(100);
  auto client = NodeClient::Connect(node.spec().host, node.spec().port);
  ASSERT_TRUE(client.ok());
  auto node_max = client->Hello();
  ASSERT_TRUE(node_max.ok()) << node_max.status().ToString();
  EXPECT_EQ(*node_max, kMaxWireVersion);
  // The same connection keeps serving v1 ops after the probe.
  EXPECT_TRUE(client->Ping().ok());
}

// ------------------------------------- node-side sampling conformance ----

TEST(NodeSampleRunsTest, MatchesLocalSketchAcrossBackendsAndModes) {
  ComputeNode node(10007, NodeServerOptions(), /*stripes=*/3);  // ragged tail
  FileRunProvider<Key> local_provider(node.file.get());
  for (IoMode mode : {IoMode::kSync, IoMode::kAsync}) {
    const OpaqConfig config = SmallConfig(mode);
    SampleList<Key> reference = LocalList(local_provider, config);
    for (const char* name : {"data", "striped"}) {
      RemoteComputeClient<Key> compute(node.spec(name), NodeClientOptions());
      auto remote = compute.SampleRuns(config);
      ASSERT_TRUE(remote.ok()) << remote.status().ToString();
      ExpectListsEqual(*remote, reference,
                       std::string(name) + " " + IoModeName(mode));
    }
  }
}

TEST(NodeExactPassTest, MatchesLocalScan) {
  ComputeNode node(20000);
  FileRunProvider<Key> local_provider(node.file.get());
  const OpaqConfig config = SmallConfig();
  OpaqSketch<Key> sketch(config);
  ASSERT_TRUE(sketch.Consume(local_provider).ok());
  auto estimates = sketch.Finalize().EquiQuantiles(8);

  ReadOptions options = config.read_options();
  const uint64_t budget = 1u << 20;
  internal_exact::BracketAccumulator<Key> local_acc(estimates.size());
  ASSERT_TRUE(internal_exact::AccumulateBrackets(local_provider, estimates,
                                                 options, budget, &local_acc)
                  .ok());

  RemoteComputeClient<Key> compute(node.spec(), NodeClientOptions());
  for (IoMode mode : {IoMode::kSync, IoMode::kAsync}) {
    ReadOptions remote_options = options;
    remote_options.io_mode = mode;
    auto scan = compute.ExactPass(estimates, remote_options, budget);
    ASSERT_TRUE(scan.ok()) << scan.status().ToString();
    EXPECT_EQ(scan->below, local_acc.below) << IoModeName(mode);
    EXPECT_EQ(scan->kept, local_acc.kept) << IoModeName(mode);
  }
}

TEST(NodeExactPassTest, NodeSideBudgetIsEnforced) {
  ComputeNode node(20000);
  FileRunProvider<Key> local_provider(node.file.get());
  const OpaqConfig config = SmallConfig();
  OpaqSketch<Key> sketch(config);
  ASSERT_TRUE(sketch.Consume(local_provider).ok());
  auto estimates = sketch.Finalize().EquiQuantiles(8);
  RemoteComputeClient<Key> compute(node.spec(), NodeClientOptions());
  auto scan = compute.ExactPass(estimates, config.read_options(),
                                /*memory_budget=*/1);
  ASSERT_FALSE(scan.ok());
  EXPECT_EQ(scan.status().code(), StatusCode::kResourceExhausted);
}

// ------------------------------------------------- fallback behaviour ----

TEST(ComputeFallbackTest, UntypedExportAnswersUnimplemented) {
  ComputeNode node(5000);
  RemoteComputeClient<Key> compute(node.spec("raw"), NodeClientOptions());
  auto list = compute.SampleRuns(SmallConfig());
  ASSERT_FALSE(list.ok());
  EXPECT_EQ(list.status().code(), StatusCode::kUnimplemented);
  auto scan = compute.ExactPass({}, ReadOptions(), 1000);
  EXPECT_EQ(scan.status().code(), StatusCode::kUnimplemented);
}

TEST(ComputeFallbackTest, EngineFallsBackToStreamingForUntypedExports) {
  // The node speaks v2, so OpenRemote attaches a compute client — but the
  // dataset is exported untyped, so every compute RPC answers
  // Unimplemented and the engine must quietly stream ranges instead,
  // with identical results.
  ComputeNode node(12000);
  auto typed = Source<Key>::OpenRemote(node.spec().ToString());
  auto raw = Source<Key>::OpenRemote(node.spec("raw").ToString());
  ASSERT_TRUE(typed.ok()) << typed.status().ToString();
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  EXPECT_NE(typed->remote_compute(), nullptr);
  EXPECT_NE(raw->remote_compute(), nullptr);

  const OpaqConfig config = SmallConfig(IoMode::kAsync);
  auto typed_session = Engine<Key>(config, *typed).Build();
  auto raw_session = Engine<Key>(config, *raw).Build();
  ASSERT_TRUE(typed_session.ok()) << typed_session.status().ToString();
  ASSERT_TRUE(raw_session.ok()) << raw_session.status().ToString();
  ExpectListsEqual(raw_session->sample_list(), typed_session->sample_list(),
                   "untyped-export fallback");

  auto query = [](QuerySession<Key>& session) {
    auto batch = session.Query({
        QueryRequest<Key>::EquiQuantiles(10),
        QueryRequest<Key>::Quantile(0.5, /*exact=*/true),
    });
    OPAQ_CHECK_OK(batch.status());
    return std::move(batch).value();
  };
  auto typed_batch = query(*typed_session);
  auto raw_batch = query(*raw_session);
  EXPECT_EQ(typed_batch.results[1].exact, raw_batch.results[1].exact);
}

TEST(ComputeFallbackTest, V1PathsCarryNoComputeClient) {
  NodeServerOptions v1_node;
  v1_node.max_wire_version = 1;
  ComputeNode old_node(3000, v1_node);
  auto against_old = Source<Key>::OpenRemote(old_node.spec().ToString());
  ASSERT_TRUE(against_old.ok()) << against_old.status().ToString();
  EXPECT_EQ(against_old->remote_compute(), nullptr);

  ComputeNode new_node(3000);
  NodeClientOptions v1_client;
  v1_client.max_wire_version = 1;
  auto forced_v1 = Source<Key>::OpenRemote(new_node.spec().ToString(),
                                           v1_client);
  ASSERT_TRUE(forced_v1.ok());
  EXPECT_EQ(forced_v1->remote_compute(), nullptr);

  // Both still answer correctly through v1 range streaming.
  const OpaqConfig config = SmallConfig();
  FileRunProvider<Key> local(old_node.file.get());
  SampleList<Key> reference = LocalList(local, config);
  auto session = Engine<Key>(config, *against_old).Build();
  ASSERT_TRUE(session.ok());
  ExpectListsEqual(session->sample_list(), reference, "v1 node");
}

// --------------------------------------- distributed engine + savings ----

uint64_t SamplePhaseBytes(ComputeNode& a, ComputeNode& b,
                          const NodeClientOptions& client_options,
                          const OpaqConfig& config,
                          const QuerySession<Key>* reference) {
  const uint64_t before = a.server.bytes_sent() + b.server.bytes_sent();
  auto source_a = Source<Key>::OpenRemote(a.spec().ToString(),
                                          client_options);
  auto source_b = Source<Key>::OpenRemote(b.spec().ToString(),
                                          client_options);
  OPAQ_CHECK_OK(source_a.status());
  OPAQ_CHECK_OK(source_b.status());
  auto session = Engine<Key>(config, {*source_a, *source_b}).Build();
  OPAQ_CHECK_OK(session.status());
  if (reference != nullptr) {
    EXPECT_EQ(session->sample_list().samples(),
              reference->sample_list().samples());
  }
  return a.server.bytes_sent() + b.server.bytes_sent() - before;
}

TEST(EngineComputeTest, DistributedAnswersMatchLocalAndSaveWireBytes) {
  ComputeNode a(60000), b(44000);
  OpaqConfig config;
  config.run_size = 4000;
  config.samples_per_run = 100;
  config.io_mode = IoMode::kAsync;

  // Reference: a single-process Engine over the same shards in order.
  auto local_session =
      Engine<Key>(config, {Source<Key>::FromFile(a.file.get()),
                           Source<Key>::FromFile(b.file.get())})
          .Build();
  ASSERT_TRUE(local_session.ok());

  // v2 (default) and forced-v1 engines leave identical sample lists...
  NodeClientOptions v1_client;
  v1_client.max_wire_version = 1;
  const uint64_t v2_bytes =
      SamplePhaseBytes(a, b, NodeClientOptions(), config, &*local_session);
  const uint64_t v1_bytes =
      SamplePhaseBytes(a, b, v1_client, config, &*local_session);

  // ...but v2 ships O(s) sample bytes instead of O(n) raw elements: with
  // 104k elements vs ~2.6k samples the win must clear 10x easily.
  EXPECT_GE(v1_bytes, 10 * v2_bytes)
      << "v1=" << v1_bytes << " bytes, v2=" << v2_bytes << " bytes";

  // And the full query path (distributed exact pass included) agrees with
  // the local run bracket for bracket, value for value.
  auto remote_a = Source<Key>::OpenRemote(a.spec().ToString());
  auto remote_b = Source<Key>::OpenRemote(b.spec().ToString());
  ASSERT_TRUE(remote_a.ok());
  ASSERT_TRUE(remote_b.ok());
  ASSERT_NE(remote_a->remote_compute(), nullptr);
  auto remote_session = Engine<Key>(config, {*remote_a, *remote_b}).Build();
  ASSERT_TRUE(remote_session.ok());
  auto query = [](QuerySession<Key>& session) {
    auto batch = session.Query({
        QueryRequest<Key>::EquiQuantiles(10),
        QueryRequest<Key>::Quantile(0.1, /*exact=*/true),
        QueryRequest<Key>::Quantile(0.9, /*exact=*/true),
    });
    OPAQ_CHECK_OK(batch.status());
    return std::move(batch).value();
  };
  auto remote_batch = query(*remote_session);
  auto local_batch = query(*local_session);
  ASSERT_EQ(remote_batch.results[0].estimates.size(),
            local_batch.results[0].estimates.size());
  for (size_t i = 0; i < local_batch.results[0].estimates.size(); ++i) {
    EXPECT_EQ(remote_batch.results[0].estimates[i].lower,
              local_batch.results[0].estimates[i].lower);
    EXPECT_EQ(remote_batch.results[0].estimates[i].upper,
              local_batch.results[0].estimates[i].upper);
  }
  EXPECT_EQ(remote_batch.results[1].exact, local_batch.results[1].exact);
  EXPECT_EQ(remote_batch.results[2].exact, local_batch.results[2].exact);
}

// ------------------------------------------------ hostile peers/faults ----

/// A fake node that runs one script per accepted connection, in order —
/// enough to scriptedly survive OpenRemote's handshake + kHello probe and
/// then misbehave on the compute RPC itself.
class ScriptedNode {
 public:
  explicit ScriptedNode(std::function<void(TcpConnection&)> script)
      : ScriptedNode(std::vector<std::function<void(TcpConnection&)>>{
            std::move(script)}) {}

  explicit ScriptedNode(
      std::vector<std::function<void(TcpConnection&)>> scripts) {
    auto listener = TcpListener::Bind("127.0.0.1", 0);
    OPAQ_CHECK_OK(listener.status());
    listener_ = std::move(listener).value();
    thread_ = std::thread([this, scripts = std::move(scripts)] {
      for (const auto& script : scripts) {
        auto conn = listener_.Accept();
        if (!conn.ok()) return;
        script(*conn);
      }
    });
  }

  ~ScriptedNode() {
    listener_.ShutdownNow();
    if (thread_.joinable()) thread_.join();
  }

  RemoteSpec spec() const {
    RemoteSpec s;
    s.host = "127.0.0.1";
    s.port = listener_.port();
    s.dataset = "data";
    return s;
  }

 private:
  TcpListener listener_;
  std::thread thread_;
};

void ConsumeFrame(TcpConnection& conn) {
  WireFrameHeader header;
  OPAQ_CHECK_OK(conn.ReadFull(&header, sizeof(header)));
  std::vector<uint8_t> payload(header.payload_len);
  if (!payload.empty()) {
    OPAQ_CHECK_OK(conn.ReadFull(payload.data(), payload.size()));
  }
}

TEST(ComputeFaultTest, NodeDeathMidSampleRunsSurfaces) {
  // The node dies after consuming the request — mid-"computation", before
  // any response byte. The client must see an IoError, never hang.
  ScriptedNode fake([](TcpConnection& conn) {
    ConsumeFrame(conn);  // the SAMPLE_RUNS request
    WireFrameHeader header;
    header.op = static_cast<uint16_t>(WireOp::kSampleListData);
    conn.WriteFull(&header, sizeof(header) / 2);  // half a header, then EOF
  });
  RemoteComputeClient<Key> compute(fake.spec(), NodeClientOptions());
  auto list = compute.SampleRuns(SmallConfig());
  ASSERT_FALSE(list.ok());
  EXPECT_EQ(list.status().code(), StatusCode::kIoError);
}

std::vector<uint8_t> SampleListPayload(const WireSampleListHeader& header,
                                       const std::vector<Key>& samples) {
  std::vector<uint8_t> payload(sizeof(header) +
                               samples.size() * sizeof(Key));
  std::memcpy(payload.data(), &header, sizeof(header));
  if (!samples.empty()) {
    std::memcpy(payload.data() + sizeof(header), samples.data(),
                samples.size() * sizeof(Key));
  }
  return payload;
}

Status SampleRunsAgainst(std::function<void(TcpConnection&)> script) {
  ScriptedNode fake(std::move(script));
  RemoteComputeClient<Key> compute(fake.spec(), NodeClientOptions());
  return compute.SampleRuns(SmallConfig()).status();
}

TEST(ComputeFaultTest, CorruptSampleListPayloadsSurfaceAsStatus) {
  // Every invariant the SampleList constructor CHECKs must be caught by
  // the decoder first: a hostile node yields a Status, not an abort.
  auto reply = [](const std::vector<uint8_t>& payload) {
    return [payload](TcpConnection& conn) {
      ConsumeFrame(conn);
      std::vector<uint8_t> frame =
          EncodeFrame(WireOp::kSampleListData, payload);
      conn.WriteFull(frame.data(), frame.size());
    };
  };

  // Unsorted samples.
  WireSampleListHeader header;
  header.subrun_size = 20;
  header.num_runs = 1;
  header.num_samples = 3;
  header.total_elements = 60;
  Status unsorted =
      SampleRunsAgainst(reply(SampleListPayload(header, {9, 4, 7})));
  ASSERT_FALSE(unsorted.ok());
  EXPECT_EQ(unsorted.code(), StatusCode::kIoError);
  EXPECT_NE(unsorted.message().find("sorted"), std::string::npos);

  // Sample count disagreeing with the payload length.
  header.num_samples = 5;
  Status short_count =
      SampleRunsAgainst(reply(SampleListPayload(header, {1, 2, 3})));
  ASSERT_FALSE(short_count.ok());
  EXPECT_EQ(short_count.code(), StatusCode::kIoError);

  // Inconsistent accounting (samples without any covering run).
  header.num_samples = 3;
  header.num_runs = 0;
  header.total_elements = 0;
  Status bad_accounting =
      SampleRunsAgainst(reply(SampleListPayload(header, {1, 2, 3})));
  ASSERT_FALSE(bad_accounting.ok());
  EXPECT_EQ(bad_accounting.code(), StatusCode::kIoError);

  // A payload shorter than its own header.
  Status truncated = SampleRunsAgainst(reply(std::vector<uint8_t>(8, 0)));
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.code(), StatusCode::kIoError);
}

TEST(ComputeFaultTest, CorruptExactScanPayloadsSurfaceAsStatus) {
  std::vector<QuantileEstimate<Key>> estimates(2);
  estimates[0].lower = 10;
  estimates[0].upper = 20;
  estimates[1].lower = 30;
  estimates[1].upper = 40;
  auto exact_against = [&](std::vector<uint8_t> payload) {
    ScriptedNode fake([payload](TcpConnection& conn) {
      ConsumeFrame(conn);
      std::vector<uint8_t> frame =
          EncodeFrame(WireOp::kExactPassData, payload);
      conn.WriteFull(frame.data(), frame.size());
    });
    RemoteComputeClient<Key> compute(fake.spec(), NodeClientOptions());
    return compute.ExactPass(estimates, ReadOptions(), 1000).status();
  };

  // Wrong bracket count.
  WireExactPassHeader header;
  header.num_brackets = 1;
  header.kept_total = 0;
  std::vector<uint8_t> wrong_brackets(sizeof(header) + 2 * sizeof(uint64_t));
  std::memcpy(wrong_brackets.data(), &header, sizeof(header));
  Status mismatch = exact_against(wrong_brackets);
  ASSERT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.code(), StatusCode::kIoError);

  // Kept counts that do not sum to the header's total.
  header.num_brackets = 2;
  header.kept_total = 3;
  const uint64_t below[2] = {1, 2};
  const uint64_t kept_counts[2] = {1, 1};  // sums to 2, header says 3
  const Key kept[3] = {5, 6, 7};
  std::vector<uint8_t> bad_sum(sizeof(header) + sizeof(below) +
                               sizeof(kept_counts) + sizeof(kept));
  uint8_t* out = bad_sum.data();
  std::memcpy(out, &header, sizeof(header));
  out += sizeof(header);
  std::memcpy(out, below, sizeof(below));
  out += sizeof(below);
  std::memcpy(out, kept_counts, sizeof(kept_counts));
  out += sizeof(kept_counts);
  std::memcpy(out, kept, sizeof(kept));
  Status sum = exact_against(bad_sum);
  ASSERT_FALSE(sum.ok());
  EXPECT_EQ(sum.code(), StatusCode::kIoError);
  EXPECT_NE(sum.message().find("sum"), std::string::npos);
}

TEST(ComputeFaultTest, NodeValidatesComputeRequests) {
  // Malformed compute requests answer with a per-request error frame; the
  // connection survives and keeps serving.
  ComputeNode node(5000);
  auto client = NodeClient::Connect(node.spec().host, node.spec().port);
  ASSERT_TRUE(client.ok());

  // Unknown select-algorithm tag.
  WireSampleRunsRequest request;
  request.run_size = 1000;
  request.samples_per_run = 50;
  request.select_algorithm = 99;
  const std::string name = "data";
  std::vector<uint8_t> payload = EncodeSampleRunsPayload(request, name);
  ASSERT_TRUE(client
                  ->SendRequest(WireOp::kSampleRuns, payload.data(),
                                payload.size())
                  .ok());
  auto answer = client->ReceiveResponse(WireOp::kSampleListData);
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(client->Ping().ok()) << "connection should survive";

  // A run size that would blow the node's compute memory bound.
  request.select_algorithm = 0;
  request.run_size = UINT64_MAX / sizeof(Key);
  payload = EncodeSampleRunsPayload(request, name);
  ASSERT_TRUE(client
                  ->SendRequest(WireOp::kSampleRuns, payload.data(),
                                payload.size())
                  .ok());
  answer = client->ReceiveResponse(WireOp::kSampleListData);
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(client->Ping().ok());

  // An exact pass whose brackets are inverted (upper < lower).
  WireExactPassRequest exact;
  exact.memory_budget = 1000;
  exact.run_size = 1000;
  std::vector<QuantileEstimate<Key>> inverted(1);
  inverted[0].lower = 50;
  inverted[0].upper = 10;
  payload = EncodeExactPassPayload(exact, inverted, name);
  ASSERT_TRUE(client
                  ->SendRequest(WireOp::kExactPass, payload.data(),
                                payload.size())
                  .ok());
  answer = client->ReceiveResponse(WireOp::kExactPassData);
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(client->Ping().ok());

  // An exact pass whose bracket region disagrees with num_brackets.
  std::vector<QuantileEstimate<Key>> brackets(1);
  brackets[0].lower = 10;
  brackets[0].upper = 50;
  payload = EncodeExactPassPayload(exact, brackets, name);
  payload.resize(payload.size() - sizeof(Key));  // truncate the region
  ASSERT_TRUE(client
                  ->SendRequest(WireOp::kExactPass, payload.data(),
                                payload.size())
                  .ok());
  answer = client->ReceiveResponse(WireOp::kExactPassData);
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(client->Ping().ok());

  // Unknown dataset: NotFound, connection survives.
  payload = EncodeSampleRunsPayload(WireSampleRunsRequest(), "nope");
  ASSERT_TRUE(client
                  ->SendRequest(WireOp::kSampleRuns, payload.data(),
                                payload.size())
                  .ok());
  answer = client->ReceiveResponse(WireOp::kSampleListData);
  EXPECT_EQ(answer.status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(client->Ping().ok());
}

TEST(ComputeFaultTest, EngineSurfacesNodeDeathMidSampleRuns) {
  // A scripted node that passes OpenRemote's handshake and negotiates v2,
  // then dies after consuming the SAMPLE_RUNS request: the engine must
  // report the failure (a non-Unimplemented compute error is NOT silently
  // retried as v1 — the node is misbehaving, not old).
  auto handshake = [](TcpConnection& conn) {
    ConsumeFrame(conn);  // OPEN_DATASET
    WireDatasetInfo info;
    info.key_type = static_cast<uint32_t>(KeyTraits<Key>::kType);
    info.element_size = sizeof(Key);
    info.element_count = 4000;
    info.max_read_elements = 4096;
    std::vector<uint8_t> frame =
        EncodeFrame(WireOp::kDatasetInfo, &info, sizeof(info));
    conn.WriteFull(frame.data(), frame.size());
  };
  auto hello = [](TcpConnection& conn) {
    ConsumeFrame(conn);  // HELLO
    WireHello ack;
    ack.max_version = 2;
    std::vector<uint8_t> frame =
        EncodeFrame(WireOp::kHelloAck, &ack, sizeof(ack));
    conn.WriteFull(frame.data(), frame.size());
  };
  auto die_mid_compute = [](TcpConnection& conn) {
    ConsumeFrame(conn);  // SAMPLE_RUNS — then hang up without answering
  };
  ScriptedNode fake(std::vector<std::function<void(TcpConnection&)>>{
      handshake, hello, die_mid_compute});

  auto source = Source<Key>::OpenRemote(fake.spec().ToString());
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  ASSERT_NE(source->remote_compute(), nullptr);
  auto session = Engine<Key>(SmallConfig(), *source).Build();
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace opaq
