// Query-serving path tests (wire v3): hostile-byte rejection in the
// query codecs, end-to-end QueryServer/QueryClient round trips asserted
// byte-identical to a single-process QuerySession, the error policy
// (recoverable errors keep the connection; framing lies close it), exact
// coalescing (N concurrent exact batches -> ONE shared §4 pass), epoch
// refresh with atomic swap, and the daemons' SIGTERM handling (fork/exec
// the real opaq_queryd / opaq_noded binaries, signal them mid-serve, and
// assert a clean exit 0 with the final counter report).

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/dataset.h"
#include "io/block_device.h"
#include "io/tempdir.h"
#include "net/client.h"
#include "net/query_client.h"
#include "net/query_server.h"
#include "net/wire_query.h"
#include "opaq/engine.h"
#include "opaq/source.h"

namespace opaq {
namespace {

using Key = uint64_t;
using Request = QueryRequest<Key>;

std::vector<Key> TestData(uint64_t n, uint64_t seed = 7) {
  DatasetSpec spec;
  spec.n = n;
  spec.seed = seed;
  spec.distribution = Distribution::kZipf;
  return GenerateDataset<Key>(spec);
}

OpaqConfig SmallConfig() {
  OpaqConfig config;
  config.run_size = 4096;
  config.samples_per_run = 64;
  return config;
}

/// Builder over a shared (mutable between epochs) dataset: what the
/// refresh tests swap underneath the server.
std::function<Result<QuerySession<Key>>()> MakeBuilder(
    std::shared_ptr<const std::vector<Key>> data,
    OpaqConfig config = SmallConfig()) {
  return [data, config]() -> Result<QuerySession<Key>> {
    Source<Key> source = Source<Key>::FromVector(*data);
    Engine<Key> engine(config, source);
    return engine.Build();
  };
}

// ------------------------------------------------------ codec hostility ----

TEST(WireQueryCodecTest, QueryNameRejectsHostileBytes) {
  // Shorter than the fixed prefix: framing lie -> IoError.
  uint8_t tiny[4] = {1, 2, 3, 4};
  auto short_prefix = DecodeQueryName(tiny, sizeof(tiny));
  EXPECT_EQ(short_prefix.status().code(), StatusCode::kIoError);

  // name_len pointing past the payload end.
  WireQueryHeader header;
  header.name_len = 1000;
  header.num_requests = 1;
  std::vector<uint8_t> overrun(sizeof(header) + 4);
  std::memcpy(overrun.data(), &header, sizeof(header));
  auto past_end = DecodeQueryName(overrun.data(), overrun.size());
  EXPECT_EQ(past_end.status().code(), StatusCode::kIoError);

  // Zero requests: well-framed but meaningless -> InvalidArgument.
  header.name_len = 0;
  header.num_requests = 0;
  std::vector<uint8_t> empty(sizeof(header));
  std::memcpy(empty.data(), &header, sizeof(header));
  auto zero = DecodeQueryName(empty.data(), empty.size());
  EXPECT_EQ(zero.status().code(), StatusCode::kInvalidArgument);

  // Request count over the protocol cap.
  header.num_requests = kMaxWireQueryRequests + 1;
  std::memcpy(empty.data(), &header, sizeof(header));
  auto over = DecodeQueryName(empty.data(), empty.size());
  EXPECT_EQ(over.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(over.status().message().find("cap"), std::string::npos);
}

TEST(WireQueryCodecTest, QueryRequestsRejectHostileBytes) {
  const std::string name = "s";
  std::vector<Request> batch = {Request::Quantile(0.5)};
  std::vector<uint8_t> payload =
      EncodeQueryPayload<Key>(name, {batch.data(), batch.size()});
  auto named = DecodeQueryName(payload.data(), payload.size());
  ASSERT_TRUE(named.ok());

  // Truncated / padded payloads: the length must match the header exactly.
  auto shorter = DecodeQueryRequests<Key>(payload.data(), payload.size() - 1,
                                          named->first);
  EXPECT_EQ(shorter.status().code(), StatusCode::kIoError);
  std::vector<uint8_t> padded = payload;
  padded.push_back(0);
  auto longer =
      DecodeQueryRequests<Key>(padded.data(), padded.size(), named->first);
  EXPECT_EQ(longer.status().code(), StatusCode::kIoError);

  // A wrong-sized element type (u32 client against a u64 session) is the
  // same exact-length violation, caught before any field is trusted.
  auto wrong_type = DecodeQueryRequests<uint32_t>(
      payload.data(), payload.size(), named->first);
  EXPECT_EQ(wrong_type.status().code(), StatusCode::kIoError);

  // Unknown kind.
  std::vector<uint8_t> bad_kind = payload;
  WireQueryRequest record;
  std::memcpy(&record, bad_kind.data() + sizeof(WireQueryHeader) + 1,
              sizeof(record));
  record.kind = 99;
  std::memcpy(bad_kind.data() + sizeof(WireQueryHeader) + 1, &record,
              sizeof(record));
  auto kind = DecodeQueryRequests<Key>(bad_kind.data(), bad_kind.size(),
                                       named->first);
  EXPECT_EQ(kind.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(kind.status().message().find("kind"), std::string::npos);

  // Unknown flag bits.
  std::memcpy(&record, payload.data() + sizeof(WireQueryHeader) + 1,
              sizeof(record));
  record.flags = 0x80;
  std::vector<uint8_t> bad_flags = payload;
  std::memcpy(bad_flags.data() + sizeof(WireQueryHeader) + 1, &record,
              sizeof(record));
  auto flags = DecodeQueryRequests<Key>(bad_flags.data(), bad_flags.size(),
                                        named->first);
  EXPECT_EQ(flags.status().code(), StatusCode::kInvalidArgument);

  // q over the equi-depth cap.
  std::memcpy(&record, payload.data() + sizeof(WireQueryHeader) + 1,
              sizeof(record));
  record.q = kMaxWireEquiDepth + 1;
  std::vector<uint8_t> bad_q = payload;
  std::memcpy(bad_q.data() + sizeof(WireQueryHeader) + 1, &record,
              sizeof(record));
  auto q = DecodeQueryRequests<Key>(bad_q.data(), bad_q.size(), named->first);
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireQueryCodecTest, QueryResultsRejectHostileBytes) {
  QueryResults<Key> results;
  results.total_elements = 100;
  results.max_rank_error = 3;
  QueryResult<Key> result;
  result.kind = Request::Kind::kQuantile;
  QuantileEstimate<Key> estimate;
  estimate.lower = 1;
  estimate.upper = 2;
  result.estimates = {estimate};
  result.exact = {5};
  results.results.push_back(result);
  auto payload = EncodeQueryResultsPayload(results);
  ASSERT_TRUE(payload.ok());

  // Round-trips clean first.
  auto ok = DecodeQueryResultsPayload<Key>(payload->data(), payload->size());
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->results[0].exact, (std::vector<Key>{5}));

  // Truncations at every interesting boundary.
  for (size_t len : {size_t{0}, sizeof(WireQueryResultHeader) - 1,
                     sizeof(WireQueryResultHeader) + 4,
                     payload->size() - 1}) {
    auto cut = DecodeQueryResultsPayload<Key>(payload->data(), len);
    EXPECT_EQ(cut.status().code(), StatusCode::kIoError) << "len " << len;
  }

  // Allocation-bomb num_results: a count near 2^32 with a tiny payload
  // must be rejected by arithmetic BEFORE any reserve, not by bad_alloc.
  std::vector<uint8_t> bomb = *payload;
  WireQueryResultHeader bomb_header;
  std::memcpy(&bomb_header, bomb.data(), sizeof(bomb_header));
  bomb_header.num_results = 0xFFFFFFFFu;
  std::memcpy(bomb.data(), &bomb_header, sizeof(bomb_header));
  auto bombed = DecodeQueryResultsPayload<Key>(bomb.data(), bomb.size());
  EXPECT_EQ(bombed.status().code(), StatusCode::kIoError);
  EXPECT_NE(bombed.status().message().find("claims"), std::string::npos);

  // Trailing bytes past the last result.
  std::vector<uint8_t> padded = *payload;
  padded.push_back(0);
  auto trailing =
      DecodeQueryResultsPayload<Key>(padded.data(), padded.size());
  EXPECT_EQ(trailing.status().code(), StatusCode::kIoError);
  EXPECT_NE(trailing.status().message().find("trailing"), std::string::npos);

  // num_exact that matches neither 0 nor num_estimates.
  std::vector<uint8_t> bad_exact = *payload;
  WireQueryResultRecord record;
  std::memcpy(&record, bad_exact.data() + sizeof(WireQueryResultHeader),
              sizeof(record));
  record.num_exact = 2;
  std::memcpy(bad_exact.data() + sizeof(WireQueryResultHeader), &record,
              sizeof(record));
  auto mismatched =
      DecodeQueryResultsPayload<Key>(bad_exact.data(), bad_exact.size());
  EXPECT_EQ(mismatched.status().code(), StatusCode::kIoError);

  // Unknown clamp-flag bits in an estimate.
  std::vector<uint8_t> bad_clamp = *payload;
  const size_t estimate_offset =
      sizeof(WireQueryResultHeader) + sizeof(WireQueryResultRecord);
  WireQuantileEstimate wire;
  std::memcpy(&wire, bad_clamp.data() + estimate_offset, sizeof(wire));
  wire.clamp_flags = 0xF0;
  std::memcpy(bad_clamp.data() + estimate_offset, &wire, sizeof(wire));
  auto clamp =
      DecodeQueryResultsPayload<Key>(bad_clamp.data(), bad_clamp.size());
  EXPECT_EQ(clamp.status().code(), StatusCode::kIoError);
}

// ------------------------------------------------- server round trips ----

class QueryServerTest : public ::testing::Test {
 protected:
  void StartServer(QueryServerOptions options = QueryServerOptions()) {
    data_ = std::make_shared<const std::vector<Key>>(TestData(20000));
    server_ = std::make_unique<QueryServer>(options);
    OPAQ_CHECK_OK(server_->Serve<Key>("bench", MakeBuilder(data_)));
    OPAQ_CHECK_OK(server_->Start());
    auto local = MakeBuilder(data_)();
    OPAQ_CHECK_OK(local.status());
    local_ = std::make_unique<QuerySession<Key>>(std::move(local).value());
  }

  std::shared_ptr<const std::vector<Key>> data_;
  std::unique_ptr<QueryServer> server_;
  std::unique_ptr<QuerySession<Key>> local_;
};

TEST_F(QueryServerTest, StartWithoutSessionsRefuses) {
  QueryServer empty;
  Status status = empty.Start();
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST_F(QueryServerTest, AllRequestKindsAnswerByteIdentically) {
  StartServer();
  auto client = QueryClient<Key>::Connect("127.0.0.1", server_->port(),
                                          "bench");
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_EQ(client->info().total_elements, local_->total_elements());
  EXPECT_EQ(client->info().max_rank_error, local_->max_rank_error());
  EXPECT_EQ(client->info().epoch, 1u);
  EXPECT_EQ(client->info().exact_enabled, 1u);

  const std::vector<std::vector<Request>> batches = {
      {Request::Quantile(0.5), Request::Quantile(0.999)},
      {Request::RankOf(0), Request::RankOf((*data_)[3]),
       Request::RankOf(UINT64_MAX)},
      {Request::QuantileByRank(1), Request::QuantileByRank(20000)},
      {Request::EquiQuantiles(10)},
      {Request::Quantile(0.5, /*exact=*/true),
       Request::EquiQuantiles(4, /*exact=*/true)},
      {Request::Quantile(0.25), Request::RankOf(42),
       Request::QuantileByRank(77), Request::EquiQuantiles(3)},
  };
  for (const std::vector<Request>& batch : batches) {
    auto remote = client->QueryPayload({batch.data(), batch.size()});
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();
    auto answers = local_->Query({batch.data(), batch.size()});
    ASSERT_TRUE(answers.ok()) << answers.status().ToString();
    auto expected = EncodeQueryResultsPayload(*answers);
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(*remote, *expected)
        << "daemon bytes diverge from the local QuerySession";
  }
}

TEST_F(QueryServerTest, WrongKeyTypeFailsPrecondition) {
  StartServer();
  auto client = QueryClient<uint32_t>::Connect("127.0.0.1", server_->port(),
                                               "bench");
  ASSERT_FALSE(client.ok());
  EXPECT_EQ(client.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(client.status().message().find("key type"), std::string::npos);
}

TEST_F(QueryServerTest, UnknownSessionIsNotFound) {
  StartServer();
  auto client = QueryClient<Key>::Connect("127.0.0.1", server_->port(),
                                          "nope");
  ASSERT_FALSE(client.ok());
  EXPECT_EQ(client.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(server_->SessionInfo("nope").status().code(),
            StatusCode::kNotFound);
}

TEST_F(QueryServerTest, RecoverableErrorsKeepTheConnectionOpen) {
  StartServer();
  auto raw = NodeClient::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(raw.ok());

  // Unknown session: error frame, connection stays useful.
  const std::string missing = "missing";
  OPAQ_CHECK_OK(raw->SendRequest(WireOp::kOpenSession, missing.data(),
                                 missing.size()));
  auto not_found = raw->ReceiveResponse(WireOp::kSessionInfo);
  EXPECT_EQ(not_found.status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(raw->Ping().ok());

  // Semantically invalid request (phi out of range): InvalidArgument from
  // the session, connection still open.
  std::vector<Request> bad_phi = {Request::Quantile(2.0)};
  std::vector<uint8_t> payload =
      EncodeQueryPayload<Key>("bench", {bad_phi.data(), bad_phi.size()});
  OPAQ_CHECK_OK(
      raw->SendRequest(WireOp::kQuery, payload.data(), payload.size()));
  auto invalid = raw->ReceiveResponse(WireOp::kQueryResult);
  EXPECT_EQ(invalid.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(raw->Ping().ok());

  // A framing lie (payload shorter than the fixed prefix) closes the
  // connection: the stream offset can no longer be trusted.
  uint8_t garbage[4] = {9, 9, 9, 9};
  OPAQ_CHECK_OK(raw->SendRequest(WireOp::kQuery, garbage, sizeof(garbage)));
  auto io_error = raw->ReceiveResponse(WireOp::kQueryResult);
  EXPECT_EQ(io_error.status().code(), StatusCode::kIoError);
  EXPECT_FALSE(raw->Ping().ok());
}

TEST_F(QueryServerTest, ConcurrentExactBatchesShareOnePass) {
  QueryServerOptions options;
  options.exact_admission_delay_seconds = 0.1;
  StartServer(options);
  const std::vector<Request> batch = {
      Request::Quantile(0.5, /*exact=*/true),
      Request::QuantileByRank(10000, /*exact=*/true)};
  auto answers = local_->Query({batch.data(), batch.size()});
  ASSERT_TRUE(answers.ok());
  auto expected = EncodeQueryResultsPayload(*answers);
  ASSERT_TRUE(expected.ok());

  constexpr int kClients = 4;
  std::atomic<bool> go{false};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kClients; ++t) {
    workers.emplace_back([&]() {
      auto client = QueryClient<Key>::Connect("127.0.0.1", server_->port(),
                                              "bench");
      OPAQ_CHECK_OK(client.status());
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      auto payload = client->QueryPayload({batch.data(), batch.size()});
      OPAQ_CHECK_OK(payload.status());
      if (*payload != *expected) {
        mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(mismatches.load(), 0)
      << "coalesced exact answers must be byte-identical to solo answers";
  // All four batches arrived inside the 100ms admission window, so the
  // leader folded them into ONE shared §4 pass.
  EXPECT_EQ(server_->exact_passes(), 1u);
}

TEST_F(QueryServerTest, RefreshSwapsEpochsAtomically) {
  // The builder re-reads *data_holder each epoch — exactly how opaq_queryd
  // re-opens its data files on a refresh interval.
  auto data_holder = std::make_shared<std::vector<Key>>(TestData(10000));
  auto shared = std::make_shared<std::shared_ptr<const std::vector<Key>>>(
      std::make_shared<const std::vector<Key>>(*data_holder));
  QueryServer server;
  OPAQ_CHECK_OK(server.Serve<Key>(
      "live", [shared]() -> Result<QuerySession<Key>> {
        Source<Key> source = Source<Key>::FromVector(**shared);
        Engine<Key> engine(SmallConfig(), source);
        return engine.Build();
      }));
  OPAQ_CHECK_OK(server.Start());

  auto client = QueryClient<Key>::Connect("127.0.0.1", server.port(), "live");
  ASSERT_TRUE(client.ok());
  EXPECT_EQ(client->info().epoch, 1u);
  EXPECT_EQ(client->info().total_elements, 10000u);

  // Twice as much data arrives; rebuild and swap.
  *shared = std::make_shared<const std::vector<Key>>(TestData(20000, 11));
  OPAQ_CHECK_OK(server.Refresh("live"));
  auto refreshed = client->OpenSession();
  ASSERT_TRUE(refreshed.ok());
  EXPECT_EQ(refreshed->epoch, 2u);
  EXPECT_EQ(refreshed->total_elements, 20000u);

  // Answers now come from the new epoch and match a local session over the
  // new data byte for byte.
  Source<Key> source = Source<Key>::FromVector(**shared);
  Engine<Key> engine(SmallConfig(), source);
  auto local = engine.Build();
  ASSERT_TRUE(local.ok());
  const std::vector<Request> batch = {Request::Quantile(0.5),
                                      Request::EquiQuantiles(4)};
  auto remote = client->QueryPayload({batch.data(), batch.size()});
  ASSERT_TRUE(remote.ok());
  auto answers = local->Query({batch.data(), batch.size()});
  ASSERT_TRUE(answers.ok());
  auto expected = EncodeQueryResultsPayload(*answers);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(*remote, *expected);
  server.Stop();
}

// ------------------------------------------------ daemon SIGTERM rows ----

struct DaemonRun {
  int exit_code = -1;
  std::string output;
  std::string address;
};

/// Forks/execs a daemon binary, waits for its "serving on HOST:PORT" line,
/// runs `while_serving(address)`, SIGTERMs it, and collects exit status +
/// full output. The real binaries, the real signal path.
DaemonRun RunDaemonUntilSigterm(
    const char* binary, const std::vector<std::string>& args,
    const std::function<void(const std::string&)>& while_serving) {
  DaemonRun run;
  int fds[2];
  OPAQ_CHECK(pipe(fds) == 0);
  const pid_t pid = fork();
  OPAQ_CHECK(pid >= 0);
  if (pid == 0) {
    dup2(fds[1], STDOUT_FILENO);
    close(fds[0]);
    close(fds[1]);
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(binary));
    for (const std::string& arg : args) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    execv(binary, argv.data());
    _exit(127);
  }
  close(fds[1]);
  FILE* out = fdopen(fds[0], "r");
  OPAQ_CHECK(out != nullptr);
  char line[512];
  bool serving = false;
  while (fgets(line, sizeof(line), out) != nullptr) {
    run.output += line;
    if (!serving) {
      const std::string text(line);
      const size_t at = text.find("serving on ");
      if (at != std::string::npos) {
        serving = true;
        const size_t start = at + std::string("serving on ").size();
        size_t end = text.find(' ', start);
        if (end == std::string::npos) end = text.find('\n', start);
        run.address = text.substr(start, end - start);
        if (while_serving) while_serving(run.address);
        kill(pid, SIGTERM);
      }
    }
  }
  fclose(out);
  int status = 0;
  OPAQ_CHECK(waitpid(pid, &status, 0) == pid);
  if (WIFEXITED(status)) run.exit_code = WEXITSTATUS(status);
  return run;
}

uint16_t PortOf(const std::string& address) {
  const size_t colon = address.rfind(':');
  OPAQ_CHECK(colon != std::string::npos) << address;
  return static_cast<uint16_t>(
      std::strtoul(address.c_str() + colon + 1, nullptr, 10));
}

std::string WriteTestDataFile(const TempDir& dir, const std::string& name,
                              uint64_t n) {
  const std::string path = dir.FilePath(name);
  auto device = FileBlockDevice::Make(path, FileBlockDevice::Mode::kCreate);
  OPAQ_CHECK_OK(device.status());
  DatasetSpec spec;
  spec.n = n;
  spec.seed = 3;
  OPAQ_CHECK_OK(GenerateDatasetToDevice<Key>(spec, device->get()));
  OPAQ_CHECK_OK((*device)->Sync());
  return path;
}

TEST(DaemonSignalTest, QuerydJoinsCleanlyOnSigterm) {
  auto dir = TempDir::Make("queryd_sig");
  OPAQ_CHECK_OK(dir.status());
  const std::string path = WriteTestDataFile(*dir, "d.opaq", 20000);
  DaemonRun run = RunDaemonUntilSigterm(
      OPAQ_QUERYD_BIN,
      {"--serve=bench=" + path, "--port=0", "--run-size=4096",
       "--samples=64"},
      [](const std::string& address) {
        // A live connection with a query in flight while the signal lands:
        // Stop() must join this connection's thread, not abandon it.
        auto client = QueryClient<Key>::Connect("127.0.0.1",
                                                PortOf(address), "bench");
        OPAQ_CHECK_OK(client.status());
        std::vector<Request> batch = {Request::Quantile(0.5)};
        OPAQ_CHECK_OK(
            client->Query({batch.data(), batch.size()}).status());
      });
  EXPECT_EQ(run.exit_code, 0) << run.output;
  // The final dump is the unified registry rendering: one FormatStatsText
  // block whose rows carry the net.* vocabulary plus the query server's own
  // metrics (the pre-registry ad-hoc counter lines are gone).
  EXPECT_NE(run.output.find("shutdown: signal received; final stats:"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("net.connections_accepted"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("query.exact_passes"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("query.batch_latency_us"), std::string::npos)
      << run.output;
}

TEST(DaemonSignalTest, NodedJoinsCleanlyOnSigterm) {
  auto dir = TempDir::Make("noded_sig");
  OPAQ_CHECK_OK(dir.status());
  const std::string path = WriteTestDataFile(*dir, "d.opaq", 20000);
  DaemonRun run = RunDaemonUntilSigterm(
      OPAQ_NODED_BIN, {"--export=sales=" + path, "--port=0"},
      [](const std::string& address) {
        auto client = NodeClient::Connect("127.0.0.1", PortOf(address));
        OPAQ_CHECK_OK(client.status());
        OPAQ_CHECK_OK(client->Ping());
      });
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("shutdown: signal received; final stats:"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("net.connections_accepted"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("node.exports"), std::string::npos)
      << run.output;
}

}  // namespace
}  // namespace opaq
