# Smoke test for the opaq CLI: generate a tiny deterministic (sequential)
# data file, sketch it, query the median, and assert the certified bracket
# actually contains the exact answer computed by the CLI's second pass.
#
# Driven by ctest:  cmake -DOPAQ_CLI=... -DWORK_DIR=... -P cli_smoke.cmake

if(NOT DEFINED OPAQ_CLI OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "cli_smoke.cmake needs -DOPAQ_CLI=... -DWORK_DIR=...")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(DATA "${WORK_DIR}/data.opaq")
set(SKETCH "${WORK_DIR}/data.sketch")

function(run_cli out_var)
  execute_process(
    COMMAND "${OPAQ_CLI}" ${ARGN}
    OUTPUT_VARIABLE stdout
    ERROR_VARIABLE stderr
    RESULT_VARIABLE code
  )
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "opaq ${ARGN} exited ${code}:\n${stdout}\n${stderr}")
  endif()
  set(${out_var} "${stdout}" PARENT_SCOPE)
endfunction()

# Sequential keys 1..10000: fully deterministic regardless of RNG details.
run_cli(gen_out generate --out=${DATA} --n=10000 --dist=sequential --seed=7)

# Overwrite guard: a second generate onto the same path must refuse without
# --force (the file may be a live dataset some writer is appending to) and
# succeed with it.
execute_process(
  COMMAND "${OPAQ_CLI}" generate --out=${DATA} --n=10000 --dist=sequential
          --seed=7
  OUTPUT_VARIABLE clobber_out
  ERROR_VARIABLE clobber_err
  RESULT_VARIABLE clobber_code
)
if(clobber_code EQUAL 0)
  message(FATAL_ERROR "generate overwrote ${DATA} without --force")
endif()
if(NOT "${clobber_out}${clobber_err}" MATCHES "already exists")
  message(FATAL_ERROR
          "overwrite refusal lacks explanation:\n${clobber_out}${clobber_err}")
endif()
run_cli(force_out generate --out=${DATA} --n=10000 --dist=sequential --seed=7
        --force)

# Live ingest: two CLI appends build a live dataset a sketch can read.
set(LIVE "${WORK_DIR}/live")
run_cli(append_out append --live=${LIVE} --n=3000 --dist=uniform --seed=11)
run_cli(append_out append --live=${LIVE} --n=2000 --dist=uniform --seed=12)
if(NOT append_out MATCHES "live dataset now holds 5000 elements in 2 segments")
  message(FATAL_ERROR "unexpected append summary:\n${append_out}")
endif()
run_cli(sketch_out sketch --data=${DATA} --out=${SKETCH}
        --run-size=1000 --samples=100)
if(NOT sketch_out MATCHES "sketched 10000 keys \\(10 runs, 1000 samples\\)")
  message(FATAL_ERROR "unexpected sketch summary:\n${sketch_out}")
endif()

run_cli(q_out quantile --sketch=${SKETCH} --phi=0.5)
# Output row: "0.5<TAB>5000<TAB><lower><TAB><upper>" (no '?' marks: with 10
# full runs the median bracket must be certified, not clamped).
if(NOT q_out MATCHES "0\\.5\t5000\t([0-9]+)\t([0-9]+)")
  message(FATAL_ERROR "no certified median bracket in:\n${q_out}")
endif()
set(LOWER ${CMAKE_MATCH_1})
set(UPPER ${CMAKE_MATCH_2})

run_cli(exact_out exact --data=${DATA} --sketch=${SKETCH} --phi=0.5)
if(NOT exact_out MATCHES "0\\.5\t([0-9]+)")
  message(FATAL_ERROR "no exact median in:\n${exact_out}")
endif()
set(EXACT ${CMAKE_MATCH_1})

if(LOWER GREATER EXACT OR UPPER LESS EXACT)
  message(FATAL_ERROR
          "bracket [${LOWER}, ${UPPER}] misses exact median ${EXACT}")
endif()
# Sequential 1..10000: the exact median is rank 5000's value, 5000.
if(NOT EXACT EQUAL 5000)
  message(FATAL_ERROR "exact median ${EXACT} != 5000")
endif()

# Lemma 3 budget for c=10, R=10, U=0 is c + (R-1)(c-1) = 91 <= n/s = 100.
run_cli(inspect_out inspect --sketch=${SKETCH})
if(NOT inspect_out MATCHES "max rank error : ([0-9]+)")
  message(FATAL_ERROR "no rank-error budget in:\n${inspect_out}")
endif()
if(CMAKE_MATCH_1 GREATER 100)
  message(FATAL_ERROR "rank-error budget ${CMAKE_MATCH_1} exceeds n/s=100")
endif()

message(STATUS "cli smoke ok: bracket [${LOWER}, ${UPPER}] contains ${EXACT}")
