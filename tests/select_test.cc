// Unit + property tests for src/select: partition primitives, all selection
// algorithms, and multi-select / regular sampling. Selection algorithms are
// cross-checked against sorting over a grid of input shapes via TEST_P.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <tuple>

#include "data/dataset.h"
#include "select/multi_select.h"
#include "select/select.h"

namespace opaq {
namespace {

// -------------------------------------------------------------- Partition --

TEST(PartitionTest, ThreeWaySplitsCorrectly) {
  std::vector<int> v{5, 1, 5, 3, 9, 5, 7, 2, 5};
  PartitionBounds b = ThreeWayPartition(v.data(), v.size(), 5);
  for (size_t i = 0; i < b.lt; ++i) EXPECT_LT(v[i], 5);
  for (size_t i = b.lt; i < b.gt; ++i) EXPECT_EQ(v[i], 5);
  for (size_t i = b.gt; i < v.size(); ++i) EXPECT_GT(v[i], 5);
  EXPECT_EQ(b.gt - b.lt, 4u);  // four fives
}

TEST(PartitionTest, AllEqualCollapsesToEqualBand) {
  std::vector<int> v(100, 7);
  PartitionBounds b = ThreeWayPartition(v.data(), v.size(), 7);
  EXPECT_EQ(b.lt, 0u);
  EXPECT_EQ(b.gt, 100u);
}

TEST(PartitionTest, PivotAbsentFromData) {
  std::vector<int> v{1, 9, 2, 8};
  PartitionBounds b = ThreeWayPartition(v.data(), v.size(), 5);
  EXPECT_EQ(b.lt, 2u);
  EXPECT_EQ(b.gt, 2u);
}

TEST(PartitionTest, EmptyInput) {
  std::vector<int> v;
  PartitionBounds b = ThreeWayPartition(v.data(), 0, 5);
  EXPECT_EQ(b.lt, 0u);
  EXPECT_EQ(b.gt, 0u);
}

TEST(InsertionSortTest, SortsSmallArrays) {
  std::vector<int> v{5, 3, 1, 4, 2};
  InsertionSort(v.data(), v.size());
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

TEST(MedianOfThreeTest, LeavesMedianInMiddle) {
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      for (int c = 0; c < 3; ++c) {
        int x = a, y = b, z = c;
        MedianOfThree(x, y, z);
        EXPECT_LE(x, y);
        EXPECT_LE(y, z);
      }
    }
  }
}

// ------------------------------------------- Selection algorithms (TEST_P) --

struct SelectCase {
  SelectAlgorithm algorithm;
  Distribution distribution;
  size_t n;
};

class SelectAlgorithmTest
    : public ::testing::TestWithParam<std::tuple<SelectAlgorithm,
                                                 Distribution, size_t>> {};

TEST_P(SelectAlgorithmTest, MatchesSortAtEveryProbedRank) {
  auto [algorithm, distribution, n] = GetParam();
  DatasetSpec spec;
  spec.n = n;
  spec.distribution = distribution;
  spec.seed = 42 + n;
  std::vector<uint64_t> data = GenerateDataset<uint64_t>(spec);
  std::vector<uint64_t> sorted = data;
  std::sort(sorted.begin(), sorted.end());

  Xoshiro256 rng(7);
  // Probe a spread of ranks including the extremes.
  std::vector<size_t> ranks{0, n - 1, n / 2, n / 4, 3 * n / 4, 1, n - 2};
  for (size_t k : ranks) {
    if (k >= n) continue;
    std::vector<uint64_t> work = data;
    uint64_t got = SelectKth(work.data(), work.size(), k, algorithm, rng);
    ASSERT_EQ(got, sorted[k])
        << SelectAlgorithmName(algorithm) << " rank " << k << " on "
        << DistributionName(distribution);
    // nth_element postcondition: prefix <= pivot <= suffix.
    for (size_t i = 0; i < k; ++i) ASSERT_LE(work[i], work[k]);
    for (size_t i = k + 1; i < n; ++i) ASSERT_GE(work[i], work[k]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsAllShapes, SelectAlgorithmTest,
    ::testing::Combine(
        ::testing::Values(SelectAlgorithm::kStdNthElement,
                          SelectAlgorithm::kMedianOfMedians,
                          SelectAlgorithm::kFloydRivest,
                          SelectAlgorithm::kIntroSelect),
        ::testing::Values(Distribution::kUniform, Distribution::kZipf,
                          Distribution::kSequential,
                          Distribution::kReverseSequential,
                          Distribution::kConstant, Distribution::kSawtooth),
        ::testing::Values(size_t{10}, size_t{100}, size_t{1000},
                          size_t{10000})),
    [](const auto& info) {
      std::string name = SelectAlgorithmName(std::get<0>(info.param));
      for (char& ch : name) {
        if (!isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return name + "_" + DistributionName(std::get<1>(info.param)) + "_" +
             std::to_string(std::get<2>(info.param));
    });

TEST(SelectionTest, SingleElement) {
  Xoshiro256 rng(1);
  for (SelectAlgorithm a :
       {SelectAlgorithm::kStdNthElement, SelectAlgorithm::kMedianOfMedians,
        SelectAlgorithm::kFloydRivest, SelectAlgorithm::kIntroSelect}) {
    std::vector<int> v{42};
    EXPECT_EQ(SelectKth(v.data(), 1, 0, a, rng), 42);
  }
}

TEST(SelectionTest, TwoElements) {
  Xoshiro256 rng(1);
  for (SelectAlgorithm a :
       {SelectAlgorithm::kMedianOfMedians, SelectAlgorithm::kFloydRivest,
        SelectAlgorithm::kIntroSelect}) {
    std::vector<int> v{9, 3};
    EXPECT_EQ(SelectKth(v.data(), 2, 0, a, rng), 3);
    v = {9, 3};
    EXPECT_EQ(SelectKth(v.data(), 2, 1, a, rng), 9);
  }
}

TEST(SelectionTest, WorksOnDoubles) {
  Xoshiro256 rng(3);
  std::vector<double> v{3.5, -1.25, 0.0, 99.9, 2.5};
  EXPECT_DOUBLE_EQ(
      SelectKth(v.data(), v.size(), 2, SelectAlgorithm::kFloydRivest, rng),
      2.5);
}

TEST(SelectionTest, MedianOfMediansIsFullyDeterministic) {
  // Same input => same rearrangement, independent of any RNG state.
  DatasetSpec spec;
  spec.n = 4096;
  auto data = GenerateDataset<uint64_t>(spec);
  std::vector<uint64_t> a = data, b = data;
  MedianOfMediansSelect(a.data(), a.size(), 1000);
  MedianOfMediansSelect(b.data(), b.size(), 1000);
  EXPECT_EQ(a, b);
}

// ------------------------------------------------------------ MultiSelect --

TEST(MultiSelectTest, SelectsArbitraryRankSet) {
  DatasetSpec spec;
  spec.n = 5000;
  spec.distribution = Distribution::kUniform;
  auto data = GenerateDataset<uint64_t>(spec);
  std::vector<uint64_t> sorted = data;
  std::sort(sorted.begin(), sorted.end());

  std::vector<uint64_t> ranks{0, 17, 555, 2500, 4999};
  Xoshiro256 rng(5);
  std::vector<uint64_t> work = data;
  auto got = MultiSelect(work.data(), work.size(), ranks,
                         SelectAlgorithm::kIntroSelect, rng);
  ASSERT_EQ(got.size(), ranks.size());
  for (size_t i = 0; i < ranks.size(); ++i) {
    EXPECT_EQ(got[i], sorted[ranks[i]]);
  }
}

TEST(MultiSelectTest, EmptyRankSet) {
  std::vector<uint64_t> data{3, 1, 2};
  Xoshiro256 rng(1);
  auto got = MultiSelect(data.data(), data.size(), {},
                         SelectAlgorithm::kIntroSelect, rng);
  EXPECT_TRUE(got.empty());
}

TEST(MultiSelectTest, AllRanks) {
  // Selecting every rank is a full sort.
  std::vector<uint64_t> data{5, 2, 9, 1, 7};
  std::vector<uint64_t> ranks{0, 1, 2, 3, 4};
  Xoshiro256 rng(2);
  auto got = MultiSelect(data.data(), data.size(), ranks,
                         SelectAlgorithm::kMedianOfMedians, rng);
  EXPECT_EQ(got, (std::vector<uint64_t>{1, 2, 5, 7, 9}));
}

class RegularSamplesTest
    : public ::testing::TestWithParam<std::tuple<SelectAlgorithm,
                                                 Distribution>> {};

TEST_P(RegularSamplesTest, MatchesSortingBaselineExactly) {
  auto [algorithm, distribution] = GetParam();
  DatasetSpec spec;
  spec.n = 8192;
  spec.distribution = distribution;
  auto data = GenerateDataset<uint64_t>(spec);

  constexpr uint64_t kS = 64;
  Xoshiro256 rng(11);
  std::vector<uint64_t> work = data;
  auto fast = RegularSamples(work.data(), work.size(), kS, algorithm, rng);

  std::vector<uint64_t> baseline_input = data;
  auto slow = RegularSamplesBySorting(baseline_input.data(),
                                      baseline_input.size(),
                                      spec.n / kS);
  // The sample at each regular rank is a fixed order statistic: every
  // algorithm must produce the identical value list.
  EXPECT_EQ(fast, slow);
  EXPECT_EQ(fast.size(), kS);
  EXPECT_TRUE(std::is_sorted(fast.begin(), fast.end()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RegularSamplesTest,
    ::testing::Combine(
        ::testing::Values(SelectAlgorithm::kStdNthElement,
                          SelectAlgorithm::kMedianOfMedians,
                          SelectAlgorithm::kFloydRivest,
                          SelectAlgorithm::kIntroSelect),
        ::testing::Values(Distribution::kUniform, Distribution::kZipf,
                          Distribution::kConstant,
                          Distribution::kSequential)),
    [](const auto& info) {
      std::string name = SelectAlgorithmName(std::get<0>(info.param));
      for (char& ch : name) {
        if (!isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return name + std::string("_") +
             DistributionName(std::get<1>(info.param));
    });

TEST(RegularSamplesTest2, SubrunCoverageProperties) {
  // Paper Appendix A, property 1: the j-th sample has >= j*c elements <= it.
  DatasetSpec spec;
  spec.n = 1000;
  spec.distribution = Distribution::kZipf;
  auto data = GenerateDataset<uint64_t>(spec);
  std::vector<uint64_t> sorted = data;
  std::sort(sorted.begin(), sorted.end());

  constexpr uint64_t kC = 25;  // sub-run size
  Xoshiro256 rng(3);
  std::vector<uint64_t> work = data;
  auto samples = RegularSamplesBySubrunSize(work.data(), work.size(), kC,
                                            SelectAlgorithm::kIntroSelect,
                                            rng);
  ASSERT_EQ(samples.size(), spec.n / kC);
  for (size_t j = 1; j <= samples.size(); ++j) {
    uint64_t count_le = static_cast<uint64_t>(
        std::upper_bound(sorted.begin(), sorted.end(), samples[j - 1]) -
        sorted.begin());
    EXPECT_GE(count_le, j * kC);
  }
}

TEST(RegularSamplesTest2, TailRunProducesFloorSamples) {
  std::vector<uint64_t> run(103);
  std::iota(run.begin(), run.end(), 0);
  Xoshiro256 rng(4);
  auto samples = RegularSamplesBySubrunSize(run.data(), run.size(), 10,
                                            SelectAlgorithm::kIntroSelect,
                                            rng);
  // floor(103/10) = 10 samples at ranks 10,20,...,100 => values 9,19,...,99.
  ASSERT_EQ(samples.size(), 10u);
  for (size_t j = 0; j < samples.size(); ++j) {
    EXPECT_EQ(samples[j], 10 * (j + 1) - 1);
  }
}

TEST(RegularSamplesTest2, SampleCountEqualsSIncludesMax) {
  // With s | m, the last sample is the run maximum (rank m).
  std::vector<uint64_t> run(64);
  std::iota(run.begin(), run.end(), 100);
  Xoshiro256 rng(5);
  auto samples = RegularSamples(run.data(), run.size(), 8,
                                SelectAlgorithm::kFloydRivest, rng);
  ASSERT_EQ(samples.size(), 8u);
  EXPECT_EQ(samples.back(), 163u);  // max element
}

}  // namespace
}  // namespace opaq
