// Unit tests for src/util: Status/Result, flags, PRNGs, timers, tables, math.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "util/flags.h"
#include "util/math.h"
#include "util/random.h"
#include "util/status.h"
#include "util/table.h"
#include "util/timer.h"

namespace opaq {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::IoError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "IO_ERROR: disk on fire");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes{
      Status::InvalidArgument("x").code(), Status::OutOfRange("x").code(),
      Status::NotFound("x").code(),        Status::AlreadyExists("x").code(),
      Status::FailedPrecondition("x").code(), Status::IoError("x").code(),
      Status::ResourceExhausted("x").code(),  Status::Internal("x").code(),
      Status::Unimplemented("x").code()};
  EXPECT_EQ(codes.size(), 9u);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIoError), "IO_ERROR");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "INVALID_ARGUMENT");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Status FailingOp() { return Status::Internal("boom"); }
Status Propagates() {
  OPAQ_RETURN_IF_ERROR(FailingOp());
  return Status::OK();
}
Result<int> ResultOp(bool fail) {
  if (fail) return Status::OutOfRange("bad");
  return 5;
}
Status UsesAssignOrReturn(bool fail, int* out) {
  OPAQ_ASSIGN_OR_RETURN(*out, ResultOp(fail));
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorMacro) {
  EXPECT_EQ(Propagates().code(), StatusCode::kInternal);
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UsesAssignOrReturn(false, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_EQ(UsesAssignOrReturn(true, &out).code(), StatusCode::kOutOfRange);
}

// ----------------------------------------------------------------- Flags --

TEST(FlagsTest, ParsesKeyEqualsValue) {
  const char* argv[] = {"prog", "--n=100", "--scale=0.5", "--name=zipf"};
  auto flags = Flags::Parse(4, const_cast<char**>(argv));
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->GetInt("n", 0), 100);
  EXPECT_DOUBLE_EQ(flags->GetDouble("scale", 1.0), 0.5);
  EXPECT_EQ(flags->GetString("name", ""), "zipf");
}

TEST(FlagsTest, ParsesSeparatedValueAndBareBool) {
  const char* argv[] = {"prog", "--n", "7", "--verbose"};
  auto flags = Flags::Parse(4, const_cast<char**>(argv));
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->GetInt("n", 0), 7);
  EXPECT_TRUE(flags->GetBool("verbose", false));
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  auto flags = Flags::Parse(1, const_cast<char**>(argv));
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->GetInt("missing", 13), 13);
  EXPECT_FALSE(flags->Has("missing"));
}

TEST(FlagsTest, CollectsPositional) {
  const char* argv[] = {"prog", "input.dat", "--n=2", "more"};
  auto flags = Flags::Parse(4, const_cast<char**>(argv));
  ASSERT_TRUE(flags.ok());
  ASSERT_EQ(flags->positional().size(), 2u);
  EXPECT_EQ(flags->positional()[0], "input.dat");
  EXPECT_EQ(flags->positional()[1], "more");
}

TEST(FlagsTest, RejectsBareDoubleDash) {
  const char* argv[] = {"prog", "--"};
  auto flags = Flags::Parse(2, const_cast<char**>(argv));
  EXPECT_FALSE(flags.ok());
}

TEST(FlagsTest, BooleanSpellings) {
  const char* argv[] = {"prog", "--a=true", "--b=0", "--c=yes", "--d=no"};
  auto flags = Flags::Parse(5, const_cast<char**>(argv));
  ASSERT_TRUE(flags.ok());
  EXPECT_TRUE(flags->GetBool("a", false));
  EXPECT_FALSE(flags->GetBool("b", true));
  EXPECT_TRUE(flags->GetBool("c", false));
  EXPECT_FALSE(flags->GetBool("d", true));
}

TEST(FlagsTest, TryGetIntRejectsBadValues) {
  // The daemon-hardening rows: `--port=` used to parse as 0 and silently
  // bind an ephemeral port; overflow and trailing junk likewise slid
  // through strtoll. All three must now be InvalidArgument naming the flag.
  const char* argv[] = {"prog", "--empty=", "--over=99999999999999999999999",
                        "--junk=12x", "--neg=-3", "--ok=42", "--bare"};
  auto flags = Flags::Parse(7, const_cast<char**>(argv));
  ASSERT_TRUE(flags.ok());
  auto empty = flags->TryGetInt("empty", 1);
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(empty.status().message().find("empty"), std::string::npos);
  auto over = flags->TryGetInt("over", 1);
  ASSERT_FALSE(over.ok());
  EXPECT_NE(over.status().message().find("overflow"), std::string::npos);
  EXPECT_FALSE(flags->TryGetInt("junk", 1).ok());
  EXPECT_FALSE(flags->TryGetInt("bare", 1).ok());  // no digits at all
  auto neg = flags->TryGetInt("neg", 1);
  ASSERT_TRUE(neg.ok());
  EXPECT_EQ(*neg, -3);
  EXPECT_EQ(*flags->TryGetInt("ok", 1), 42);
  EXPECT_EQ(*flags->TryGetInt("missing", 13), 13);  // default untouched
}

TEST(FlagsTest, TryGetDoubleRejectsBadValues) {
  const char* argv[] = {"prog", "--empty=", "--junk=fast", "--nan=nan",
                        "--huge=1e999", "--ok=0.5", "--tiny=1e-999"};
  auto flags = Flags::Parse(7, const_cast<char**>(argv));
  ASSERT_TRUE(flags.ok());
  EXPECT_FALSE(flags->TryGetDouble("empty", 1.0).ok());
  EXPECT_FALSE(flags->TryGetDouble("junk", 1.0).ok());
  EXPECT_FALSE(flags->TryGetDouble("nan", 1.0).ok());
  EXPECT_FALSE(flags->TryGetDouble("huge", 1.0).ok());
  EXPECT_DOUBLE_EQ(*flags->TryGetDouble("ok", 1.0), 0.5);
  // Underflow-to-zero is a representable answer, not an error.
  auto tiny = flags->TryGetDouble("tiny", 1.0);
  ASSERT_TRUE(tiny.ok());
  EXPECT_EQ(*tiny, 0.0);
  EXPECT_DOUBLE_EQ(*flags->TryGetDouble("missing", 2.5), 2.5);
}

TEST(FlagsTest, TryGetBoolRejectsBadValues) {
  const char* argv[] = {"prog", "--bad=maybe", "--empty=", "--yes=yes"};
  auto flags = Flags::Parse(4, const_cast<char**>(argv));
  ASSERT_TRUE(flags.ok());
  EXPECT_FALSE(flags->TryGetBool("bad", false).ok());
  EXPECT_FALSE(flags->TryGetBool("empty", false).ok());
  EXPECT_TRUE(*flags->TryGetBool("yes", false));
  EXPECT_FALSE(*flags->TryGetBool("missing", false));
}

// ---------------------------------------------------------------- Random --

TEST(RandomTest, SplitMix64IsDeterministic) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, XoshiroIsDeterministicAcrossInstances) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.Next() == b.Next());
  EXPECT_LT(equal, 3);
}

TEST(RandomTest, NextBoundedStaysInRange) {
  Xoshiro256 rng(99);
  for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.NextBounded(bound), bound);
  }
}

TEST(RandomTest, NextBoundedIsRoughlyUniform) {
  Xoshiro256 rng(5);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {0};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(kBuckets)];
  for (int c : counts) {
    EXPECT_GT(c, kDraws / kBuckets * 0.9);
    EXPECT_LT(c, kDraws / kBuckets * 1.1);
  }
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Xoshiro256 rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RandomTest, JumpProducesNonOverlappingStream) {
  Xoshiro256 a(3);
  Xoshiro256 b(3);
  b.Jump();
  std::set<uint64_t> first;
  for (int i = 0; i < 1000; ++i) first.insert(a.Next());
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(first.count(b.Next()), 0u);
}

TEST(RandomTest, ShufflePreservesMultiset) {
  Xoshiro256 rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<int> orig = v;
  Shuffle(v, rng);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(RandomTest, ShuffleHandlesEmptyAndSingle) {
  Xoshiro256 rng(1);
  std::vector<int> empty;
  Shuffle(empty, rng);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  Shuffle(one, rng);
  EXPECT_EQ(one[0], 42);
}

// ----------------------------------------------------------------- Timer --

TEST(TimerTest, WallTimerAdvances) {
  WallTimer t;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + std::sqrt(static_cast<double>(i));
  EXPECT_GT(t.ElapsedSeconds(), 0.0);
}

TEST(PhaseTimerTest, AccumulatesNamedPhases) {
  PhaseTimer t({"a", "b"});
  t.AddSeconds(0, 1.5);
  t.AddSeconds(1, 0.5);
  EXPECT_DOUBLE_EQ(t.Seconds(0), 1.5);
  EXPECT_DOUBLE_EQ(t.Seconds(1), 0.5);
  EXPECT_DOUBLE_EQ(t.TotalSeconds(), 2.0);
  EXPECT_DOUBLE_EQ(t.Fraction(0), 0.75);
  EXPECT_EQ(t.name(1), "b");
}

TEST(PhaseTimerTest, StartSwitchesPhases) {
  PhaseTimer t({"a", "b"});
  t.Start(0);
  t.Start(1);  // implicitly stops phase 0
  t.Stop();
  EXPECT_GE(t.Seconds(0), 0.0);
  EXPECT_GE(t.Seconds(1), 0.0);
  EXPECT_GT(t.TotalSeconds(), 0.0);
}

TEST(PhaseTimerTest, MergeAddsPhaseWise) {
  PhaseTimer a({"x", "y"}), b({"x", "y"});
  a.AddSeconds(0, 1.0);
  b.AddSeconds(0, 2.0);
  b.AddSeconds(1, 3.0);
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.Seconds(0), 3.0);
  EXPECT_DOUBLE_EQ(a.Seconds(1), 3.0);
}

TEST(PhaseTimerTest, FractionOfEmptyTimerIsZero) {
  PhaseTimer t({"a"});
  EXPECT_DOUBLE_EQ(t.Fraction(0), 0.0);
}

// ----------------------------------------------------------------- Table --

TEST(TableTest, PrintsAlignedColumns) {
  TextTable t;
  t.SetTitle("Demo");
  t.AddHeader({"Dectile", "s=250"});
  t.AddRow({"10%", "0.33"});
  t.AddRow({"20%", "0.39"});
  std::ostringstream os;
  t.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("Demo"), std::string::npos);
  EXPECT_NE(out.find("Dectile"), std::string::npos);
  EXPECT_NE(out.find("0.33"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TableTest, CsvOutput) {
  TextTable t;
  t.AddHeader({"a", "b"});
  t.AddRow({"1", "2"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TableTest, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::Num(0.126, 2), "0.13");
  EXPECT_EQ(TextTable::Num(3.0, 0), "3");
  EXPECT_EQ(TextTable::Num(1.23456, 4), "1.2346");
}

// ------------------------------------------------------------------ Math --

TEST(MathTest, DivCeil) {
  EXPECT_EQ(DivCeil(0, 5), 0u);
  EXPECT_EQ(DivCeil(1, 5), 1u);
  EXPECT_EQ(DivCeil(5, 5), 1u);
  EXPECT_EQ(DivCeil(6, 5), 2u);
  EXPECT_EQ(DivCeil(10, 1), 10u);
}

TEST(MathTest, IsPowerOfTwo) {
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_TRUE(IsPowerOfTwo(1ull << 63));
  EXPECT_FALSE(IsPowerOfTwo((1ull << 63) + 1));
}

TEST(MathTest, FloorPowerOfTwo) {
  EXPECT_EQ(FloorPowerOfTwo(1), 1u);
  EXPECT_EQ(FloorPowerOfTwo(2), 2u);
  EXPECT_EQ(FloorPowerOfTwo(3), 2u);
  EXPECT_EQ(FloorPowerOfTwo(1000), 512u);
}

TEST(MathTest, Log2Floor) {
  EXPECT_EQ(Log2Floor(1), 0);
  EXPECT_EQ(Log2Floor(2), 1);
  EXPECT_EQ(Log2Floor(3), 1);
  EXPECT_EQ(Log2Floor(1024), 10);
}

TEST(MathTest, Clamp) {
  EXPECT_EQ(Clamp(5, 1, 10), 5);
  EXPECT_EQ(Clamp(-5, 1, 10), 1);
  EXPECT_EQ(Clamp(50, 1, 10), 10);
}

}  // namespace
}  // namespace opaq
