// The compressed extent format's test wall: on-disk layout pinned
// byte-for-byte, a committed golden blob that must decode forever,
// round-trips across codecs / extent sizes / stripe counts / ragged tails,
// and hostile-byte coverage — truncations, corrupt CRCs, lying lengths,
// unknown codecs, version skew — all of which must surface as clean
// `Status`, never a crash (a new on-disk format is the riskiest change
// this codebase takes: silent corruption = silently wrong quantiles).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <fstream>
#include <iterator>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "io/block_device.h"
#include "io/codec.h"
#include "io/extent.h"
#include "io/io_mode.h"
#include "io/run_reader.h"
#include "io/tempdir.h"
#include "opaq/source.h"
#include "util/crc32.h"

namespace opaq {
namespace {

using Key = uint64_t;

// ------------------------------------------------------------- helpers ----

std::vector<Key> Iota(uint64_t n) {
  std::vector<Key> out(n);
  std::iota(out.begin(), out.end(), 0);
  return out;
}

/// The full contents of a device.
std::vector<uint8_t> DeviceBytes(BlockDevice* device) {
  auto size = device->Size();
  OPAQ_CHECK_OK(size.status());
  std::vector<uint8_t> bytes(*size);
  if (!bytes.empty()) {
    OPAQ_CHECK_OK(device->ReadAt(0, bytes.data(), bytes.size()));
  }
  return bytes;
}

/// A fresh memory device holding exactly `bytes`.
std::unique_ptr<MemoryBlockDevice> DeviceFrom(
    const std::vector<uint8_t>& bytes) {
  auto device = std::make_unique<MemoryBlockDevice>();
  if (!bytes.empty()) {
    OPAQ_CHECK_OK(device->WriteAt(0, bytes.data(), bytes.size()));
  }
  return device;
}

/// An extent file over fresh memory devices, kept alive together.
struct MemoryExtents {
  std::vector<std::unique_ptr<MemoryBlockDevice>> devices;
  Result<ExtentStatsSnapshot> write_stats = Status::Internal("unset");

  MemoryExtents(const std::vector<Key>& data, int stripes,
                const ExtentWriterOptions& options) {
    std::vector<BlockDevice*> raw;
    for (int s = 0; s < stripes; ++s) {
      devices.push_back(std::make_unique<MemoryBlockDevice>());
      raw.push_back(devices.back().get());
    }
    write_stats = WriteExtents(data, raw, options);
  }

  std::vector<BlockDevice*> raw() const {
    std::vector<BlockDevice*> out;
    for (const auto& device : devices) out.push_back(device.get());
    return out;
  }
};

/// Streams every element of `source`; any failure becomes the returned
/// status with the elements delivered before it.
Result<std::vector<Key>> Drain(RunSource<Key>& source) {
  std::vector<Key> out;
  std::vector<Key> run;
  while (true) {
    auto more = source.NextRun(&run);
    if (!more.ok()) return more.status();
    if (!*more) return out;
    out.insert(out.end(), run.begin(), run.end());
  }
}

/// One valid stored extent (header + payload) packed with `codec`, for the
/// hostile-byte rows to mutate.
std::vector<uint8_t> MakeStoredExtent(const std::vector<Key>& values,
                                      ExtentCodec codec, uint64_t index) {
  const size_t unpacked = values.size() * sizeof(Key);
  std::vector<uint8_t> payload(unpacked);
  std::memcpy(payload.data(), values.data(), unpacked);
  if (codec != ExtentCodec::kRaw) {
    std::vector<uint8_t> packed;
    OPAQ_CHECK_OK(GetCodec(codec)->Compress(payload.data(), payload.size(),
                                            sizeof(Key), &packed));
    OPAQ_CHECK_LT(packed.size(), payload.size());
    payload = std::move(packed);
  }
  ExtentHeader header;
  header.codec = static_cast<uint16_t>(codec);
  header.payload_crc = Crc32(payload.data(), payload.size());
  header.extent_index = index;
  header.unpacked_len = unpacked;
  header.packed_len = payload.size();
  std::vector<uint8_t> out(sizeof(header) + payload.size());
  std::memcpy(out.data(), &header, sizeof(header));
  std::memcpy(out.data() + sizeof(header), payload.data(), payload.size());
  return out;
}

Status DecodeInto(const std::vector<uint8_t>& stored, uint64_t index,
                  std::vector<Key>* out, bool verify_crc = true) {
  return DecodeStoredExtent(stored.data(), stored.size(), index,
                            out->size() * sizeof(Key), sizeof(Key),
                            verify_crc, out->data(), nullptr);
}

// ------------------------------------------------- layout pinning ----

// The numeric layout IS the format: these tests pin every offset and tag so
// an accidental reorder/retype shows up as a test diff, not as files that
// silently stop interoperating across builds.

TEST(ExtentLayoutTest, FileHeaderLayoutIsPinned) {
  EXPECT_EQ(sizeof(ExtentFileHeader), 64u);
  EXPECT_EQ(ExtentFileHeader::kMagic, 0x4f50415145585431ULL);  // "OPAQEXT1"
  EXPECT_EQ(offsetof(ExtentFileHeader, magic), 0u);
  EXPECT_EQ(offsetof(ExtentFileHeader, version), 8u);
  EXPECT_EQ(offsetof(ExtentFileHeader, key_type), 12u);
  EXPECT_EQ(offsetof(ExtentFileHeader, element_size), 16u);
  EXPECT_EQ(offsetof(ExtentFileHeader, num_stripes), 20u);
  EXPECT_EQ(offsetof(ExtentFileHeader, stripe_index), 24u);
  EXPECT_EQ(offsetof(ExtentFileHeader, default_codec), 28u);
  EXPECT_EQ(offsetof(ExtentFileHeader, extent_elements), 32u);
  EXPECT_EQ(offsetof(ExtentFileHeader, total_elements), 40u);
  EXPECT_EQ(offsetof(ExtentFileHeader, num_extents), 48u);
  EXPECT_EQ(offsetof(ExtentFileHeader, directory_offset), 56u);
}

TEST(ExtentLayoutTest, ExtentHeaderLayoutIsPinned) {
  EXPECT_EQ(sizeof(ExtentHeader), 40u);
  EXPECT_EQ(ExtentHeader::kMagic, 0x54584f45u);  // "EOXT"
  EXPECT_EQ(offsetof(ExtentHeader, magic), 0u);
  EXPECT_EQ(offsetof(ExtentHeader, version), 4u);
  EXPECT_EQ(offsetof(ExtentHeader, codec), 6u);
  EXPECT_EQ(offsetof(ExtentHeader, payload_crc), 8u);
  EXPECT_EQ(offsetof(ExtentHeader, reserved), 12u);
  EXPECT_EQ(offsetof(ExtentHeader, extent_index), 16u);
  EXPECT_EQ(offsetof(ExtentHeader, unpacked_len), 24u);
  EXPECT_EQ(offsetof(ExtentHeader, packed_len), 32u);
}

TEST(ExtentLayoutTest, CodecTagsArePinned) {
  // On-disk tags: never renumber, only append.
  EXPECT_EQ(static_cast<uint16_t>(ExtentCodec::kRaw), 0);
  EXPECT_EQ(static_cast<uint16_t>(ExtentCodec::kDelta), 1);
  EXPECT_EQ(static_cast<uint16_t>(ExtentCodec::kZlib), 2);
  EXPECT_EQ(kNumExtentCodecs, 3u);
  EXPECT_STREQ(ExtentCodecName(ExtentCodec::kRaw), "raw");
  EXPECT_STREQ(ExtentCodecName(ExtentCodec::kDelta), "delta");
  EXPECT_STREQ(ExtentCodecName(ExtentCodec::kZlib), "zlib");
}

// ---------------------------------------------------- golden blob ----

/// The golden dataset: 14 u64 values in 4-element extents (4 extents, the
/// last ragged), packed with the in-repo delta codec so the blob round-
/// trips on every build. This function must keep producing the exact bytes
/// of tests/golden/extent_u64_v1.bin forever — that file is what deployed
/// readers of format v1 must always be able to decode.
std::vector<Key> GoldenValues() {
  return {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7};
}

std::vector<uint8_t> MakeGoldenExtentBytes() {
  MemoryBlockDevice device;
  ExtentWriterOptions options;
  options.extent_elements = 4;
  options.codec = ExtentCodec::kDelta;
  auto writer = ExtentWriter::Create({&device}, KeyType::kU64, sizeof(Key),
                                     options);
  OPAQ_CHECK_OK(writer.status());
  const std::vector<Key> values = GoldenValues();
  OPAQ_CHECK_OK(writer->Append(values.data(), values.size()));
  OPAQ_CHECK_OK(writer->Finish());
  return DeviceBytes(&device);
}

std::vector<uint8_t> GoldenBlobBytes() {
  const std::string path =
      std::string(OPAQ_GOLDEN_DIR) + "/extent_u64_v1.bin";
  std::ifstream in(path, std::ios::binary);
  OPAQ_CHECK(in.good()) << "missing golden blob: " << path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

TEST(ExtentGoldenTest, WriterProducesExactGoldenBytes) {
  EXPECT_EQ(MakeGoldenExtentBytes(), GoldenBlobBytes())
      << "the extent encoding changed; files written by released builds "
         "would no longer read back. If intentional, bump the format "
         "version and commit a new golden blob.";
}

TEST(ExtentGoldenTest, GoldenBlobDecodes) {
  auto device = DeviceFrom(GoldenBlobBytes());
  auto file = ExtentFile::Open({device.get()});
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  EXPECT_EQ(file->size(), 14u);
  EXPECT_EQ(file->key_type(), static_cast<uint32_t>(KeyType::kU64));
  EXPECT_EQ(file->element_size(), sizeof(Key));
  EXPECT_EQ(file->extent_elements(), 4u);
  EXPECT_EQ(file->num_extents(), 4u);
  EXPECT_EQ(file->default_codec(), ExtentCodec::kDelta);
  EXPECT_EQ(file->ExtentLength(3), 2u) << "tail extent is ragged";
  std::vector<Key> decoded(file->size());
  ASSERT_TRUE(file->ReadElements(0, file->size(), decoded.data()).ok());
  EXPECT_EQ(decoded, GoldenValues());
}

TEST(ExtentGoldenTest, GoldenFieldsPinnedAtTheirByteOffsets) {
  const std::vector<uint8_t> blob = GoldenBlobBytes();
  ASSERT_GE(blob.size(), sizeof(ExtentFileHeader) + sizeof(ExtentHeader));
  auto u64_at = [&blob](size_t offset) {
    uint64_t v = 0;
    std::memcpy(&v, blob.data() + offset, sizeof(v));
    return v;
  };
  auto u32_at = [&blob](size_t offset) {
    uint32_t v = 0;
    std::memcpy(&v, blob.data() + offset, sizeof(v));
    return v;
  };
  // File header straight off the committed bytes.
  EXPECT_EQ(u64_at(0), ExtentFileHeader::kMagic);
  EXPECT_EQ(u32_at(8), 1u);                                  // version
  EXPECT_EQ(u32_at(12), static_cast<uint32_t>(KeyType::kU64));
  EXPECT_EQ(u32_at(16), 8u);                                 // element_size
  EXPECT_EQ(u32_at(20), 1u);                                 // num_stripes
  EXPECT_EQ(u32_at(24), 0u);                                 // stripe_index
  EXPECT_EQ(u32_at(28), 1u);                                 // codec: delta
  EXPECT_EQ(u64_at(32), 4u);                                 // extent_elements
  EXPECT_EQ(u64_at(40), 14u);                                // total_elements
  EXPECT_EQ(u64_at(48), 4u);                                 // num_extents
  // First extent header sits directly after the file header.
  EXPECT_EQ(u32_at(64), ExtentHeader::kMagic);
  EXPECT_EQ(u64_at(64 + 16), 0u);   // extent_index
  EXPECT_EQ(u64_at(64 + 24), 32u);  // unpacked_len: 4 elements x 8 bytes
  // Directory: one u64 offset per extent, CRC'd, then end of file.
  const uint64_t directory_offset = u64_at(56);
  EXPECT_EQ(blob.size(), directory_offset + 4 * sizeof(uint64_t) + 4);
  EXPECT_EQ(u64_at(directory_offset), sizeof(ExtentFileHeader))
      << "first extent starts at the header boundary";
}

// ----------------------------------------------------- round trips ----

TEST(ExtentRoundTripTest, AcrossCodecsSizesStripesAndTails) {
  struct Case {
    uint64_t n;
    uint64_t extent_elements;
    int stripes;
  };
  const Case kCases[] = {
      {0, 8, 1},     // empty dataset: zero extents, still a valid file
      {0, 8, 3},     // empty striped
      {1, 8, 1},     // single element (ragged first extent)
      {8, 8, 1},     // exactly one extent
      {9, 8, 1},     // one extent + ragged tail
      {64, 8, 1},    // exact multiple
      {100, 8, 4},   // ragged tail across stripes
      {100, 1, 3},   // degenerate one-element extents
      {1000, 64, 5}, // stripes > extents per stripe
      {37, 1000, 2}, // extent larger than the dataset
  };
  std::vector<ExtentCodec> codecs = {ExtentCodec::kRaw, ExtentCodec::kDelta};
  if (CodecAvailable(ExtentCodec::kZlib)) {
    codecs.push_back(ExtentCodec::kZlib);
  }
  for (ExtentCodec codec : codecs) {
    for (const Case& c : kCases) {
      SCOPED_TRACE(std::string(ExtentCodecName(codec)) + " n=" +
                   std::to_string(c.n) + " extent=" +
                   std::to_string(c.extent_elements) + " stripes=" +
                   std::to_string(c.stripes));
      ExtentWriterOptions options;
      options.extent_elements = c.extent_elements;
      options.codec = codec;
      const std::vector<Key> data = Iota(c.n);
      MemoryExtents stripes(data, c.stripes, options);
      ASSERT_TRUE(stripes.write_stats.ok())
          << stripes.write_stats.status().ToString();
      auto file = ExtentFile::Open(stripes.raw());
      ASSERT_TRUE(file.ok()) << file.status().ToString();
      EXPECT_EQ(file->size(), c.n);
      EXPECT_EQ(file->num_extents(),
                (c.n + c.extent_elements - 1) / c.extent_elements);
      // Inline (sync) and threaded (async) streams must both deliver the
      // exact logical order.
      for (bool threaded : {false, true}) {
        ExtentReaderOptions reader;
        reader.threaded = threaded;
        ExtentRunSource<Key> source(&*file, /*run_size=*/17, reader);
        auto streamed = Drain(source);
        ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
        EXPECT_EQ(*streamed, data) << (threaded ? "threaded" : "inline");
      }
      // Random access agrees with the stream.
      if (c.n >= 3) {
        std::vector<Key> slice(c.n - 2);
        ASSERT_TRUE(file->ReadElements(1, c.n - 2, slice.data()).ok());
        EXPECT_EQ(slice, std::vector<Key>(data.begin() + 1, data.end() - 1));
      }
    }
  }
}

TEST(ExtentRoundTripTest, SubRangeStreamsMatchTheSlice) {
  ExtentWriterOptions options;
  options.extent_elements = 16;
  options.codec = ExtentCodec::kDelta;
  const std::vector<Key> data = Iota(333);
  MemoryExtents stripes(data, 3, options);
  auto file = ExtentFile::Open(stripes.raw());
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  struct Range {
    uint64_t first, count;
  };
  // Ranges clipping extents at both ends, spanning stripes, and empty.
  const Range kRanges[] = {{0, 333}, {5, 40},  {16, 16}, {15, 18},
                           {330, 3}, {100, 0}, {333, 0}, {47, 111}};
  for (const Range& r : kRanges) {
    for (bool threaded : {false, true}) {
      SCOPED_TRACE("[" + std::to_string(r.first) + ", +" +
                   std::to_string(r.count) + ") threaded=" +
                   std::to_string(threaded));
      ExtentReaderOptions reader;
      reader.threaded = threaded;
      ExtentRunSource<Key> source(&*file, /*run_size=*/7, reader, r.first,
                                  r.count);
      auto streamed = Drain(source);
      ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
      EXPECT_EQ(*streamed,
                std::vector<Key>(data.begin() + r.first,
                                 data.begin() + r.first + r.count));
    }
  }
}

TEST(ExtentRoundTripTest, PackStatsAccount) {
  ExtentWriterOptions options;
  options.extent_elements = 32;
  options.codec = ExtentCodec::kDelta;
  const std::vector<Key> data = Iota(100);  // sorted: delta compresses well
  MemoryExtents stripes(data, 1, options);
  ASSERT_TRUE(stripes.write_stats.ok());
  const ExtentStatsSnapshot packed = *stripes.write_stats;
  EXPECT_EQ(packed.extents, 4u);
  EXPECT_EQ(packed.unpacked_bytes, 800u);
  EXPECT_LT(packed.packed_bytes, packed.unpacked_bytes);
  EXPECT_LT(packed.ratio(), 1.0);
  EXPECT_EQ(packed.extents_by_codec[1], 4u) << "all extents took delta";

  auto file = ExtentFile::Open(stripes.raw());
  ASSERT_TRUE(file.ok());
  ExtentRunSource<Key> source(&*file, 100, ExtentReaderOptions{2, false});
  ASSERT_TRUE(Drain(source).ok());
  // The reader's unpack accounting mirrors the writer's pack accounting.
  const ExtentStatsSnapshot unpacked = file->stats().Snapshot();
  EXPECT_EQ(unpacked.extents, packed.extents);
  EXPECT_EQ(unpacked.unpacked_bytes, packed.unpacked_bytes);
  EXPECT_EQ(unpacked.packed_bytes, packed.packed_bytes);
}

TEST(ExtentRoundTripTest, IncompressibleExtentsFallBackToRaw) {
  // A pseudo-random payload the delta codec cannot shrink: the writer must
  // store those extents raw, so stored never exceeds unpacked.
  std::vector<Key> data(256);
  Key x = 0x9e3779b97f4a7c15ULL;
  for (Key& v : data) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    v = x;
  }
  ExtentWriterOptions options;
  options.extent_elements = 64;
  options.codec = ExtentCodec::kDelta;
  MemoryExtents stripes(data, 1, options);
  ASSERT_TRUE(stripes.write_stats.ok());
  EXPECT_GT(stripes.write_stats->extents_by_codec[0], 0u)
      << "random data should defeat the delta codec";
  auto file = ExtentFile::Open(stripes.raw());
  ASSERT_TRUE(file.ok());
  ExtentRunSource<Key> source(&*file, 64, ExtentReaderOptions{2, false});
  auto streamed = Drain(source);
  ASSERT_TRUE(streamed.ok());
  EXPECT_EQ(*streamed, data);
}

TEST(ExtentRoundTripTest, WriterRefusesBadGeometryAndUnfinishedUse) {
  MemoryBlockDevice device;
  ExtentWriterOptions options;
  options.extent_elements = 0;
  EXPECT_FALSE(ExtentWriter::Create({&device}, KeyType::kU64, 8, options)
                   .ok());
  options.extent_elements = kMaxExtentBytes;  // * 8 bytes >> the cap
  EXPECT_FALSE(ExtentWriter::Create({&device}, KeyType::kU64, 8, options)
                   .ok());
  options.extent_elements = 64;
  options.codec = ExtentCodec::kDelta;
  EXPECT_FALSE(ExtentWriter::Create({&device}, KeyType::kU32, 3, options)
                   .ok())
      << "delta only packs 4/8-byte elements";
  EXPECT_FALSE(ExtentWriter::Create({}, KeyType::kU64, 8, options).ok());

  auto writer = ExtentWriter::Create({&device}, KeyType::kU64, 8, options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Finish().ok());
  Key v = 1;
  EXPECT_FALSE(writer->Append(&v, 1).ok()) << "append after finish";
  EXPECT_FALSE(writer->Finish().ok()) << "double finish";
}

// -------------------------------------------------- hostile bytes ----

// Every row builds valid bytes, breaks them in one specific way, and
// demands a clean error Status — no CHECK, no crash, no allocation sized
// from attacker-controlled fields. (Run under ASan/UBSan in CI.)

TEST(ExtentHostileTest, TruncatedExtentHeader) {
  const std::vector<uint8_t> stored =
      MakeStoredExtent(Iota(8), ExtentCodec::kRaw, 0);
  std::vector<Key> out(8);
  for (size_t len = 0; len < sizeof(ExtentHeader); ++len) {
    std::vector<uint8_t> cut(stored.begin(), stored.begin() + len);
    Status s = DecodeStoredExtent(cut.data(), cut.size(), 0,
                                  out.size() * sizeof(Key), sizeof(Key),
                                  true, out.data(), nullptr);
    EXPECT_FALSE(s.ok()) << "len=" << len;
  }
}

TEST(ExtentHostileTest, TruncatedAndPaddedPayload) {
  const std::vector<uint8_t> stored =
      MakeStoredExtent(Iota(8), ExtentCodec::kDelta, 0);
  std::vector<Key> out(8);
  for (size_t len = sizeof(ExtentHeader); len < stored.size(); ++len) {
    std::vector<uint8_t> cut(stored.begin(), stored.begin() + len);
    EXPECT_FALSE(DecodeInto(cut, 0, &out).ok()) << "truncated to " << len;
  }
  std::vector<uint8_t> padded = stored;
  padded.push_back(0);
  EXPECT_FALSE(DecodeInto(padded, 0, &out).ok()) << "trailing garbage";
}

TEST(ExtentHostileTest, CorruptPayloadCrc) {
  std::vector<uint8_t> stored =
      MakeStoredExtent(Iota(8), ExtentCodec::kRaw, 0);
  stored.back() ^= 0x01;  // payload bit flip
  std::vector<Key> out(8);
  Status s = DecodeInto(stored, 0, &out);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("CRC"), std::string::npos) << s.ToString();
}

TEST(ExtentHostileTest, LyingUnpackedLengthRejectedBeforeAnyAllocation) {
  // The allocation-bomb row: a header claiming a huge unpacked size must be
  // rejected against trusted geometry BEFORE anything is sized from it.
  std::vector<uint8_t> stored =
      MakeStoredExtent(Iota(8), ExtentCodec::kDelta, 0);
  const uint64_t bomb = 1ULL << 40;
  std::memcpy(stored.data() + offsetof(ExtentHeader, unpacked_len), &bomb,
              sizeof(bomb));
  std::vector<Key> out(8);
  Status s = DecodeInto(stored, 0, &out, /*verify_crc=*/false);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("unpacked"), std::string::npos) << s.ToString();
}

TEST(ExtentHostileTest, UnknownCodecTag) {
  std::vector<uint8_t> stored =
      MakeStoredExtent(Iota(8), ExtentCodec::kRaw, 0);
  const uint16_t codec = 99;
  std::memcpy(stored.data() + offsetof(ExtentHeader, codec), &codec,
              sizeof(codec));
  std::vector<Key> out(8);
  Status s = DecodeInto(stored, 0, &out, /*verify_crc=*/false);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("codec"), std::string::npos) << s.ToString();
}

TEST(ExtentHostileTest, ForeignMagicAndVersionSkew) {
  std::vector<Key> out(8);
  {
    std::vector<uint8_t> stored =
        MakeStoredExtent(Iota(8), ExtentCodec::kRaw, 0);
    const uint32_t magic = 0x46464952;  // "RIFF"
    std::memcpy(stored.data(), &magic, sizeof(magic));
    EXPECT_FALSE(DecodeInto(stored, 0, &out).ok());
  }
  {
    std::vector<uint8_t> stored =
        MakeStoredExtent(Iota(8), ExtentCodec::kRaw, 0);
    const uint16_t version = 2;
    std::memcpy(stored.data() + offsetof(ExtentHeader, version), &version,
                sizeof(version));
    Status s = DecodeInto(stored, 0, &out);
    EXPECT_FALSE(s.ok());
    EXPECT_NE(s.message().find("version"), std::string::npos)
        << s.ToString();
  }
}

TEST(ExtentHostileTest, MisdirectedExtentIndex) {
  const std::vector<uint8_t> stored =
      MakeStoredExtent(Iota(8), ExtentCodec::kRaw, /*index=*/3);
  std::vector<Key> out(8);
  EXPECT_TRUE(DecodeInto(stored, 3, &out).ok());
  EXPECT_FALSE(DecodeInto(stored, 4, &out).ok())
      << "extent stored where another was expected";
}

TEST(ExtentHostileTest, PackedLargerThanUnpackedRejected) {
  // Writers guarantee packed <= unpacked (raw fallback); a file claiming
  // otherwise is corrupt by definition and must not decode.
  std::vector<uint8_t> stored(sizeof(ExtentHeader) + 64);
  ExtentHeader header;
  header.codec = static_cast<uint16_t>(ExtentCodec::kRaw);
  header.extent_index = 0;
  header.unpacked_len = 32;
  header.packed_len = 64;
  header.payload_crc = Crc32(stored.data() + sizeof(header), 64);
  std::memcpy(stored.data(), &header, sizeof(header));
  std::vector<Key> out(4);
  Status s = DecodeInto(stored, 0, &out, /*verify_crc=*/false);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("larger"), std::string::npos) << s.ToString();
}

TEST(ExtentHostileTest, EveryHeaderByteFlipIsHandled) {
  const std::vector<uint8_t> pristine =
      MakeStoredExtent(Iota(8), ExtentCodec::kDelta, 0);
  const std::vector<Key> expected = Iota(8);
  for (size_t i = 0; i < pristine.size(); ++i) {
    std::vector<uint8_t> stored = pristine;
    stored[i] ^= 0xff;
    std::vector<Key> out(8);
    Status s = DecodeInto(stored, 0, &out);  // must not crash, ever
    const bool reserved_byte = i >= offsetof(ExtentHeader, reserved) &&
                               i < offsetof(ExtentHeader, reserved) + 4;
    if (reserved_byte) continue;  // reserved bytes are (for now) ignored
    EXPECT_FALSE(s.ok()) << "flip at byte " << i << " went unnoticed";
  }
}

/// Valid single-stripe golden-layout bytes for the file-level rows.
std::vector<uint8_t> ValidFileBytes() { return MakeGoldenExtentBytes(); }

Status OpenStatus(const std::vector<uint8_t>& bytes) {
  auto device = DeviceFrom(bytes);
  return ExtentFile::Open({device.get()}).status();
}

TEST(ExtentHostileTest, FileHeaderForeignMagic) {
  std::vector<uint8_t> bytes = ValidFileBytes();
  bytes[0] ^= 0xff;
  Status s = OpenStatus(bytes);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("magic"), std::string::npos) << s.ToString();
}

TEST(ExtentHostileTest, FileHeaderVersionSkew) {
  std::vector<uint8_t> bytes = ValidFileBytes();
  const uint32_t version = 2;
  std::memcpy(bytes.data() + offsetof(ExtentFileHeader, version), &version,
              sizeof(version));
  Status s = OpenStatus(bytes);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("version"), std::string::npos) << s.ToString();
}

TEST(ExtentHostileTest, UnfinishedFileRefusesToOpen) {
  // A crashed writer leaves directory_offset 0 — Open must refuse loudly
  // rather than serve a half-written dataset as empty or partial.
  std::vector<uint8_t> bytes = ValidFileBytes();
  const uint64_t zero = 0;
  std::memcpy(bytes.data() + offsetof(ExtentFileHeader, directory_offset),
              &zero, sizeof(zero));
  Status s = OpenStatus(bytes);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("unfinished"), std::string::npos)
      << s.ToString();
}

TEST(ExtentHostileTest, TruncatedFileRefusesToOpen) {
  const std::vector<uint8_t> bytes = ValidFileBytes();
  // Every truncation point: mid-header, mid-extent, mid-directory.
  for (size_t len : {0ul, 16ul, 63ul, 64ul, 80ul, bytes.size() - 5,
                     bytes.size() - 1}) {
    std::vector<uint8_t> cut(bytes.begin(), bytes.begin() + len);
    EXPECT_FALSE(OpenStatus(cut).ok()) << "truncated to " << len;
  }
}

TEST(ExtentHostileTest, CorruptDirectoryCrcRefusesToOpen) {
  std::vector<uint8_t> bytes = ValidFileBytes();
  uint64_t directory_offset = 0;
  std::memcpy(&directory_offset,
              bytes.data() + offsetof(ExtentFileHeader, directory_offset),
              sizeof(directory_offset));
  bytes[directory_offset] ^= 0x01;  // first directory offset byte
  Status s = OpenStatus(bytes);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("CRC"), std::string::npos) << s.ToString();
}

TEST(ExtentHostileTest, InconsistentExtentCountRefusesToOpen) {
  std::vector<uint8_t> bytes = ValidFileBytes();
  const uint64_t wrong = 5;  // geometry says 4
  std::memcpy(bytes.data() + offsetof(ExtentFileHeader, num_extents), &wrong,
              sizeof(wrong));
  EXPECT_FALSE(OpenStatus(bytes).ok());
}

TEST(ExtentHostileTest, BadGeometryRefusesToOpen) {
  {
    std::vector<uint8_t> bytes = ValidFileBytes();
    const uint32_t zero = 0;
    std::memcpy(bytes.data() + offsetof(ExtentFileHeader, element_size),
                &zero, sizeof(zero));
    EXPECT_FALSE(OpenStatus(bytes).ok()) << "element_size 0";
  }
  {
    std::vector<uint8_t> bytes = ValidFileBytes();
    const uint64_t huge = kMaxExtentBytes;  // * 8 bytes/element > the cap
    std::memcpy(bytes.data() + offsetof(ExtentFileHeader, extent_elements),
                &huge, sizeof(huge));
    EXPECT_FALSE(OpenStatus(bytes).ok()) << "oversized extent_elements";
  }
}

TEST(ExtentHostileTest, StripeSetMismatchesRefuseToOpen) {
  ExtentWriterOptions options;
  options.extent_elements = 8;
  MemoryExtents stripes(Iota(64), 2, options);
  ASSERT_TRUE(stripes.write_stats.ok());
  {
    auto swapped = stripes.raw();
    std::swap(swapped[0], swapped[1]);
    Status s = ExtentFile::Open(swapped).status();
    EXPECT_FALSE(s.ok());
    EXPECT_NE(s.message().find("order"), std::string::npos) << s.ToString();
  }
  {
    Status s = ExtentFile::Open({stripes.raw()[0]}).status();
    EXPECT_FALSE(s.ok());
    EXPECT_NE(s.message().find("stripe"), std::string::npos) << s.ToString();
  }
}

TEST(ExtentHostileTest, CorruptExtentSurfacesAsStickyStatusMidStream) {
  ExtentWriterOptions options;
  options.extent_elements = 8;
  const std::vector<Key> data = Iota(64);
  MemoryExtents stripes(data, 1, options);
  ASSERT_TRUE(stripes.write_stats.ok());
  // Flip one payload byte of extent 4 (at offset header + 4 extents in).
  const uint64_t victim =
      sizeof(ExtentFileHeader) + 4 * (sizeof(ExtentHeader) + 64) +
      sizeof(ExtentHeader) + 3;
  std::vector<uint8_t> bytes = DeviceBytes(stripes.raw()[0]);
  bytes[victim] ^= 0xff;
  auto device = DeviceFrom(bytes);
  auto file = ExtentFile::Open({device.get()});
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  for (bool threaded : {false, true}) {
    SCOPED_TRACE(threaded ? "threaded" : "inline");
    ExtentReaderOptions reader;
    reader.threaded = threaded;
    ExtentRunSource<Key> source(&*file, /*run_size=*/8, reader);
    std::vector<Key> run;
    // Intact prefix first: extents 0..3 are clean.
    for (int r = 0; r < 4; ++r) {
      auto more = source.NextRun(&run);
      ASSERT_TRUE(more.ok()) << more.status().ToString();
      ASSERT_TRUE(*more);
      EXPECT_EQ(run, std::vector<Key>(data.begin() + r * 8,
                                      data.begin() + (r + 1) * 8));
    }
    // Then the corruption surfaces — and sticks.
    auto bad = source.NextRun(&run);
    ASSERT_FALSE(bad.ok());
    EXPECT_NE(bad.status().message().find("CRC"), std::string::npos)
        << bad.status().ToString();
    EXPECT_FALSE(source.NextRun(&run).ok()) << "status must be sticky";
  }
  // Turning verification off skips only the CRC: the flipped payload now
  // decodes (to wrong bytes — that is the documented trade).
  ExtentReaderOptions unchecked;
  unchecked.threaded = false;
  unchecked.verify_checksums = false;
  ExtentRunSource<Key> source(&*file, /*run_size=*/64, unchecked);
  EXPECT_TRUE(Drain(source).ok());
}

TEST(ExtentHostileTest, AbandonedThreadedReaderJoinsCleanly) {
  ExtentWriterOptions options;
  options.extent_elements = 4;
  MemoryExtents stripes(Iota(256), 3, options);
  ASSERT_TRUE(stripes.write_stats.ok());
  auto file = ExtentFile::Open(stripes.raw());
  ASSERT_TRUE(file.ok());
  ExtentReaderOptions reader;
  reader.threaded = true;
  ExtentRunSource<Key> source(&*file, /*run_size=*/10, reader);
  std::vector<Key> run;
  auto more = source.NextRun(&run);
  ASSERT_TRUE(more.ok());
  // Destructor must close channels and join all stripe threads without
  // draining the stream (no hang, no leak — TSan/ASan watch this).
}

// ------------------------------------------------------ facade ----

TEST(ExtentFacadeTest, SourceSniffsExtentFilesAndChecksKeyType) {
  auto dir = TempDir::Make("extent_facade");
  ASSERT_TRUE(dir.ok());
  const std::string path = dir->path() + "/data.ext";
  {
    auto device = FileBlockDevice::Make(path, FileBlockDevice::Mode::kCreate);
    ASSERT_TRUE(device.ok());
    ExtentWriterOptions options;
    options.extent_elements = 16;
    options.codec = ExtentCodec::kDelta;
    ASSERT_TRUE(
        WriteExtents(Iota(100), {device->get()}, options).ok());
    ASSERT_TRUE((*device)->Sync().ok());
  }
  auto source = Source<Key>::Open(path);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  EXPECT_EQ(source->size(), 100u);
  EXPECT_NE(source->pack_stats(), nullptr)
      << "compressed sources expose pack accounting";
  ReadOptions read;
  read.run_size = 32;
  auto runs = source->OpenRuns(read);
  auto streamed = Drain(*runs);
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
  EXPECT_EQ(*streamed, Iota(100));
  // Same file, wrong key type: a clean InvalidArgument naming the type.
  auto wrong = Source<uint32_t>::Open(path);
  ASSERT_FALSE(wrong.ok());
  EXPECT_NE(wrong.status().message().find("key type"), std::string::npos)
      << wrong.status().ToString();
}

}  // namespace
}  // namespace opaq
