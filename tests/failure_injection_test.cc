// Failure-injection tests: every layer must surface injected device errors
// as clean Status values — no crashes, no partially-poisoned results.

#include <gtest/gtest.h>

#include <numeric>

#include "core/exact.h"
#include "core/opaq.h"
#include "core/sketch_io.h"
#include "data/dataset.h"
#include "io/async_run_reader.h"
#include "io/codec.h"
#include "io/extent.h"
#include "io/faulty_device.h"
#include "io/run_reader.h"
#include "io/striped_data_file.h"
#include "io/striped_run_source.h"
#include "parallel/parallel_opaq.h"

namespace opaq {
namespace {

// Option builders (designated initializers are C++20; this file is C++17).
FaultyDevice::Options FailReadAt(uint64_t n) {
  FaultyDevice::Options options;
  options.fail_read_at = n;
  return options;
}

FaultyDevice::Options FailWriteAt(
    uint64_t n, StatusCode code = StatusCode::kIoError) {
  FaultyDevice::Options options;
  options.fail_write_at = n;
  options.code = code;
  return options;
}

FaultyDevice::Options TruncateAfterBytes(uint64_t bytes) {
  FaultyDevice::Options options;
  options.truncate_after_bytes = bytes;
  return options;
}

// Builds a data file of `n` keys on a FaultyDevice with `options`.
struct FaultyFixture {
  std::unique_ptr<FaultyDevice> device;
  Result<TypedDataFile<uint64_t>> file = Status::Internal("unset");

  FaultyFixture(uint64_t n, FaultyDevice::Options options) {
    auto inner = std::make_unique<MemoryBlockDevice>();
    DatasetSpec spec;
    spec.n = n;
    OPAQ_CHECK_OK(WriteDataset(GenerateDataset<uint64_t>(spec),
                               inner.get()));
    device = std::make_unique<FaultyDevice>(std::move(inner), options);
    file = TypedDataFile<uint64_t>::Open(device.get());
  }
};

TEST(FaultyDeviceTest, PassesThroughWhenHealthy) {
  FaultyFixture f(1000, {});
  ASSERT_TRUE(f.file.ok());
  auto all = f.file->ReadAll();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 1000u);
}

TEST(FaultyDeviceTest, InjectsConfiguredCode) {
  FaultyDevice dev(std::make_unique<MemoryBlockDevice>(),
                   FailWriteAt(1, StatusCode::kResourceExhausted));
  char c = 'x';
  Status s = dev.WriteAt(0, &c, 1);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  // Next write succeeds (only the 1st was poisoned).
  EXPECT_TRUE(dev.WriteAt(0, &c, 1).ok());
}

TEST(FailureInjectionTest, OpenFailsWhenHeaderReadFails) {
  FaultyFixture f(100, FailReadAt(1));
  EXPECT_FALSE(f.file.ok());
  EXPECT_EQ(f.file.status().code(), StatusCode::kIoError);
}

TEST(FailureInjectionTest, RunReaderSurfacesMidStreamError) {
  // Header read (1) succeeds; fail the 3rd data read => second run fails.
  FaultyFixture f(1000, FailReadAt(3));
  ASSERT_TRUE(f.file.ok());
  RunReader<uint64_t> reader(&*f.file, 250);
  std::vector<uint64_t> buffer;
  auto first = reader.NextRun(&buffer);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(*first);
  auto second = reader.NextRun(&buffer);
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kIoError);
}

TEST(FailureInjectionTest, SketchConsumeFileSurfacesError) {
  FaultyFixture f(10000, FailReadAt(4));
  ASSERT_TRUE(f.file.ok());
  OpaqConfig config;
  config.run_size = 1000;
  config.samples_per_run = 100;
  OpaqSketch<uint64_t> sketch(config);
  Status s = sketch.Consume(FileRunProvider<uint64_t>(&*f.file));
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  // The sketch holds only fully-consumed runs; it can still be finalized
  // soundly over what it saw.
  EXPECT_LT(sketch.elements_consumed(), 10000u);
}

TEST(FailureInjectionTest, OpenRejectsTruncatedDevice) {
  // Device already shorter than the header's promise at Open time: the
  // size check in DataFile::Open must catch it up front.
  FaultyFixture f(1000, TruncateAfterBytes(32 + 500 * sizeof(uint64_t)));
  EXPECT_FALSE(f.file.ok());
  EXPECT_EQ(f.file.status().code(), StatusCode::kInvalidArgument);
}

TEST(FailureInjectionTest, RunReaderSurfacesShortRead) {
  // File opens healthy, then the device "physically" ends mid-way: header
  // (32B) + 500 keys vanish behind the reader's back. The first run fits;
  // the second must fail with OutOfRange, not return partial data.
  FaultyFixture f(1000, {});
  ASSERT_TRUE(f.file.ok());
  f.device->set_truncate_after_bytes(32 + 500 * sizeof(uint64_t));
  RunReader<uint64_t> reader(&*f.file, 400);
  std::vector<uint64_t> buffer;
  auto first = reader.NextRun(&buffer);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(*first);
  EXPECT_EQ(buffer.size(), 400u);
  auto second = reader.NextRun(&buffer);
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kOutOfRange);
}

TEST(FailureInjectionTest, SketchConsumeFileSurfacesShortRead) {
  // A device truncated after Open must stop the one-pass sample phase
  // cleanly: ConsumeFile returns OutOfRange, and the sketch holds only
  // the fully-consumed prefix runs.
  FaultyFixture f(10000, {});
  ASSERT_TRUE(f.file.ok());
  f.device->set_truncate_after_bytes(32 + 2500 * sizeof(uint64_t));
  OpaqConfig config;
  config.run_size = 1000;
  config.samples_per_run = 100;
  OpaqSketch<uint64_t> sketch(config);
  Status s = sketch.Consume(FileRunProvider<uint64_t>(&*f.file));
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(sketch.elements_consumed(), 2000u);
  EXPECT_EQ(sketch.runs_consumed(), 2u);
}

TEST(FailureInjectionTest, AsyncConsumeFileSurfacesError) {
  // The same mid-stream read failure as the sync test, routed through the
  // prefetching pipeline at every sweep depth: the error must surface as a
  // clean Status from ConsumeFile (no hang), the reader thread must be
  // joined by then (asan/tsan gate leaks), and the sketch must hold exactly
  // the same fully-consumed prefix as the sync path.
  for (uint64_t depth : {1u, 2u, 4u, 8u}) {
    FaultyFixture f(10000, FailReadAt(4));  // header + runs 1-2 ok, run 3 dies
    ASSERT_TRUE(f.file.ok());
    OpaqConfig config;
    config.run_size = 1000;
    config.samples_per_run = 100;
    config.io_mode = IoMode::kAsync;
    config.prefetch_depth = depth;
    OpaqSketch<uint64_t> sketch(config);
    Status s = sketch.Consume(FileRunProvider<uint64_t>(&*f.file));
    EXPECT_FALSE(s.ok()) << "depth " << depth;
    EXPECT_EQ(s.code(), StatusCode::kIoError) << "depth " << depth;
    EXPECT_EQ(sketch.runs_consumed(), 2u) << "depth " << depth;
    EXPECT_EQ(sketch.elements_consumed(), 2000u) << "depth " << depth;
  }
}

TEST(FailureInjectionTest, AsyncConsumeFileSurfacesShortRead) {
  // Device truncated behind the reader's back: the async pipeline must
  // deliver the intact prefix runs, then report OutOfRange — never partial
  // data, never a wedged prefetch thread.
  FaultyFixture f(10000, {});
  ASSERT_TRUE(f.file.ok());
  f.device->set_truncate_after_bytes(32 + 2500 * sizeof(uint64_t));
  OpaqConfig config;
  config.run_size = 1000;
  config.samples_per_run = 100;
  config.io_mode = IoMode::kAsync;
  config.prefetch_depth = 4;
  OpaqSketch<uint64_t> sketch(config);
  Status s = sketch.Consume(FileRunProvider<uint64_t>(&*f.file));
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(sketch.elements_consumed(), 2000u);
  EXPECT_EQ(sketch.runs_consumed(), 2u);
}

TEST(FailureInjectionTest, AsyncReaderKeepsReportingErrorAfterFailure) {
  // Once the prefetch thread hits a device error, every subsequent NextRun
  // must keep returning that error (not EOF, not a crash).
  FaultyFixture f(1000, FailReadAt(2));  // first data read fails
  ASSERT_TRUE(f.file.ok());
  AsyncReaderOptions options;
  options.prefetch_depth = 2;
  AsyncRunReader<uint64_t> reader(&*f.file, 250, options);
  std::vector<uint64_t> buffer;
  auto first = reader.NextRun(&buffer);
  EXPECT_FALSE(first.ok());
  EXPECT_EQ(first.status().code(), StatusCode::kIoError);
  auto second = reader.NextRun(&buffer);
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kIoError);
}

TEST(FailureInjectionTest, AsyncReaderAbandonedAfterErrorDoesNotHang) {
  // Construct, let the prefetch thread fail, and destroy without ever
  // consuming: the destructor must still close the pipeline and join.
  FaultyFixture f(1000, FailReadAt(2));
  ASSERT_TRUE(f.file.ok());
  AsyncReaderOptions options;
  options.prefetch_depth = 8;
  AsyncRunReader<uint64_t> reader(&*f.file, 100, options);
  // No NextRun at all.
}

TEST(FailureInjectionTest, ExactSecondPassSurfacesError) {
  FaultyFixture healthy(10000, {});
  ASSERT_TRUE(healthy.file.ok());
  OpaqConfig config;
  config.run_size = 1000;
  config.samples_per_run = 100;
  OpaqSketch<uint64_t> sketch(config);
  ASSERT_TRUE(sketch.Consume(FileRunProvider<uint64_t>(&*healthy.file)).ok());
  auto estimate = sketch.Finalize().Quantile(0.5);

  // Same data, but the second pass hits a failing disk.
  FaultyFixture faulty(10000, FailReadAt(6));
  ASSERT_TRUE(faulty.file.ok());
  auto exact = ExactQuantileSecondPass(FileRunProvider<uint64_t>(&*faulty.file),
                                       estimate, config.read_options());
  EXPECT_FALSE(exact.ok());
  EXPECT_EQ(exact.status().code(), StatusCode::kIoError);
}

TEST(FailureInjectionTest, SketchSaveSurfacesWriteError) {
  DatasetSpec spec;
  spec.n = 10000;
  auto data = GenerateDataset<uint64_t>(spec);
  OpaqConfig config;
  config.run_size = 1000;
  config.samples_per_run = 100;
  OpaqEstimator<uint64_t> est = EstimateQuantilesInMemory(data, config);
  FaultyDevice dev(std::make_unique<MemoryBlockDevice>(), FailWriteAt(2));
  Status s = SaveSampleList(est.sample_list(), &dev);
  EXPECT_FALSE(s.ok());
}

// Rank 1's disk fails mid-pass; the whole parallel run must come back with
// that error (and not hang or crash), in either I/O mode — under kAsync the
// failing rank must also shut down its prefetch thread before returning.
void RunParallelDiskDeath(IoMode io_mode) {
  const int p = 4;
  std::vector<std::unique_ptr<FaultyDevice>> devices;
  std::vector<TypedDataFile<uint64_t>> files;
  for (int r = 0; r < p; ++r) {
    auto inner = std::make_unique<MemoryBlockDevice>();
    DatasetSpec spec;
    spec.n = 20000;
    spec.seed = r;
    OPAQ_CHECK_OK(WriteDataset(GenerateDataset<uint64_t>(spec),
                               inner.get()));
    FaultyDevice::Options options;
    if (r == 1) options.fail_read_at = 5;
    devices.push_back(
        std::make_unique<FaultyDevice>(std::move(inner), options));
    auto file = TypedDataFile<uint64_t>::Open(devices.back().get());
    ASSERT_TRUE(file.ok());
    files.push_back(std::move(file).value());
  }
  std::vector<FileRunProvider<uint64_t>> providers;
  providers.reserve(files.size());
  for (auto& f : files) providers.emplace_back(&f);
  std::vector<const RunProvider<uint64_t>*> file_ptrs;
  for (const auto& provider : providers) file_ptrs.push_back(&provider);

  Cluster::Options cluster_options;
  cluster_options.num_processors = p;
  Cluster cluster(cluster_options);
  ParallelOpaqOptions options;
  options.config.run_size = 2000;
  options.config.samples_per_run = 100;
  options.config.io_mode = io_mode;
  options.config.prefetch_depth = 2;
  auto result = RunParallelOpaq(cluster, file_ptrs, options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(FailureInjectionTest, ParallelRunFailsCleanlyWhenOneDiskDies) {
  RunParallelDiskDeath(IoMode::kSync);
}

TEST(FailureInjectionTest, ParallelAsyncRunFailsCleanlyWhenOneDiskDies) {
  RunParallelDiskDeath(IoMode::kAsync);
}

// ------------------------------------------------------- Striped backend --

// A striped file over 3 memory devices, with the middle stripe wrapped in a
// FaultyDevice — one disk of the array dying while the others stay healthy.
// chunk == run_size, so logical chunk c IS run c and the failure position
// is exactly predictable: with D = 3, chunk 1 is stripe 1's first data
// chunk, so failing stripe 1's read #k kills run 1 + 3*(k - 2) (read #1 is
// the Open-time header read).
struct FaultyStripeFixture {
  static constexpr uint64_t kRunSize = 500;
  static constexpr int kStripes = 3;

  std::vector<std::unique_ptr<BlockDevice>> devices;
  FaultyDevice* faulty = nullptr;  // borrowed view of devices[1]
  Result<StripedDataFile<uint64_t>> file = Status::Internal("unset");

  FaultyStripeFixture(uint64_t n, FaultyDevice::Options options) {
    std::vector<std::unique_ptr<MemoryBlockDevice>> memory;
    std::vector<BlockDevice*> raw;
    for (int s = 0; s < kStripes; ++s) {
      memory.push_back(std::make_unique<MemoryBlockDevice>());
      raw.push_back(memory.back().get());
    }
    DatasetSpec spec;
    spec.n = n;
    OPAQ_CHECK_OK(
        WriteStriped(GenerateDataset<uint64_t>(spec), raw, kRunSize)
            .status());
    for (int s = 0; s < kStripes; ++s) {
      if (s == 1) {
        auto wrapped = std::make_unique<FaultyDevice>(std::move(memory[1]),
                                                      options);
        faulty = wrapped.get();
        devices.push_back(std::move(wrapped));
      } else {
        devices.push_back(std::move(memory[static_cast<size_t>(s)]));
      }
    }
    std::vector<BlockDevice*> opened;
    for (auto& device : devices) opened.push_back(device.get());
    file = StripedDataFile<uint64_t>::Open(opened);
  }
};

TEST(FailureInjectionTest, StripedOpenFailsWhenStripeHeaderDies) {
  FaultyStripeFixture f(6000, FailReadAt(1));
  EXPECT_FALSE(f.file.ok());
  EXPECT_EQ(f.file.status().code(), StatusCode::kIoError);
}

TEST(FailureInjectionTest, StripedConsumeFileSurfacesStripeDeath) {
  // Kill stripe 1 on its second data chunk (read #3 after header + chunk 1):
  // the dying chunk is logical run 4, so exactly runs 0-3 must be consumed,
  // the error must surface as a clean Status from ConsumeFile, and every
  // stripe reader thread must be joined by then (asan/tsan gate leaks) — at
  // every prefetch depth, in both threaded and inline modes.
  for (IoMode io_mode : {IoMode::kSync, IoMode::kAsync}) {
    for (uint64_t depth : {1u, 2u, 8u}) {
      FaultyStripeFixture f(6000, FailReadAt(3));
      ASSERT_TRUE(f.file.ok());
      OpaqConfig config;
      config.run_size = FaultyStripeFixture::kRunSize;
      config.samples_per_run = 100;
      config.io_mode = io_mode;
      config.prefetch_depth = depth;
      OpaqSketch<uint64_t> sketch(config);
      Status s = sketch.Consume(StripedFileProvider<uint64_t>(&*f.file));
      EXPECT_FALSE(s.ok()) << IoModeName(io_mode) << " depth " << depth;
      EXPECT_EQ(s.code(), StatusCode::kIoError)
          << IoModeName(io_mode) << " depth " << depth;
      EXPECT_EQ(sketch.runs_consumed(), 4u)
          << IoModeName(io_mode) << " depth " << depth;
      EXPECT_EQ(sketch.elements_consumed(),
                4 * FaultyStripeFixture::kRunSize)
          << IoModeName(io_mode) << " depth " << depth;
      if (io_mode == IoMode::kSync) break;  // depth is a no-op inline
    }
  }
}

TEST(FailureInjectionTest, StripedReaderKeepsReportingErrorAfterFailure) {
  // Both reading modes must latch the failure: a transient device error
  // must not let a retried NextRun silently resume mid-stream.
  for (bool threaded : {true, false}) {
    FaultyStripeFixture f(6000, FailReadAt(2));  // stripe 1's 1st data chunk
    ASSERT_TRUE(f.file.ok());
    StripedReaderOptions options;
    options.prefetch_chunks = 2;
    options.threaded = threaded;
    StripedRunSource<uint64_t> source(&*f.file,
                                      FaultyStripeFixture::kRunSize,
                                      options);
    std::vector<uint64_t> buffer;
    // Run 0 (stripe 0) is intact; run 1 dies; so does every later call —
    // even though the FaultyDevice only poisons one read.
    auto first = source.NextRun(&buffer);
    ASSERT_TRUE(first.ok()) << "threaded=" << threaded;
    EXPECT_TRUE(*first);
    for (int i = 0; i < 3; ++i) {
      auto failed = source.NextRun(&buffer);
      EXPECT_FALSE(failed.ok()) << "threaded=" << threaded;
      EXPECT_EQ(failed.status().code(), StatusCode::kIoError)
          << "threaded=" << threaded;
    }
  }
}

TEST(FailureInjectionTest, StripedReaderAbandonedAfterErrorDoesNotHang) {
  // Let a stripe thread fail, never consume, destroy: the destructor must
  // close every channel and join every thread.
  FaultyStripeFixture f(6000, FailReadAt(2));
  ASSERT_TRUE(f.file.ok());
  StripedReaderOptions options;
  options.prefetch_chunks = 8;
  StripedRunSource<uint64_t> source(&*f.file, 250, options);
  // No NextRun at all.
}

TEST(FailureInjectionTest, StripedShortReadSurfacesAsError) {
  // The array opens healthy, then one stripe physically shrinks behind the
  // reader's back: the intact prefix runs arrive, then OutOfRange — never
  // partial data.
  FaultyStripeFixture f(6000, {});
  ASSERT_TRUE(f.file.ok());
  // Keep the header plus one 500-element chunk of stripe 1.
  f.faulty->set_truncate_after_bytes(sizeof(StripeFileHeader) +
                                     500 * sizeof(uint64_t));
  OpaqConfig config;
  config.run_size = FaultyStripeFixture::kRunSize;
  config.samples_per_run = 100;
  config.io_mode = IoMode::kAsync;
  config.prefetch_depth = 2;
  OpaqSketch<uint64_t> sketch(config);
  Status s = sketch.Consume(StripedFileProvider<uint64_t>(&*f.file));
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(sketch.runs_consumed(), 4u);  // runs 0-3; run 4 was truncated
}

TEST(FailureInjectionTest, StripedExactSecondPassSurfacesError) {
  FaultyStripeFixture healthy(6000, {});
  ASSERT_TRUE(healthy.file.ok());
  OpaqConfig config;
  config.run_size = FaultyStripeFixture::kRunSize;
  config.samples_per_run = 100;
  OpaqSketch<uint64_t> sketch(config);
  ASSERT_TRUE(
      sketch.Consume(StripedFileProvider<uint64_t>(&*healthy.file)).ok());
  auto estimate = sketch.Finalize().Quantile(0.5);

  FaultyStripeFixture faulty(6000, FailReadAt(3));
  ASSERT_TRUE(faulty.file.ok());
  StripedFileProvider<uint64_t> provider(&*faulty.file);
  ReadOptions options;
  options.run_size = FaultyStripeFixture::kRunSize;
  options.io_mode = IoMode::kAsync;
  auto exact = ExactQuantileSecondPass(provider, estimate, options);
  EXPECT_FALSE(exact.ok());
  EXPECT_EQ(exact.status().code(), StatusCode::kIoError);
}

// One rank's striped array loses a disk mid-pass; the whole parallel run
// must come back with that error, with every stripe reader thread joined.
TEST(FailureInjectionTest, ParallelRunFailsCleanlyWhenOneStripeDies) {
  const int p = 3;
  std::vector<std::unique_ptr<FaultyStripeFixture>> ranks;
  std::vector<const RunProvider<uint64_t>*> shards;
  std::vector<std::unique_ptr<StripedFileProvider<uint64_t>>> providers;
  for (int r = 0; r < p; ++r) {
    FaultyDevice::Options options;
    if (r == 1) options.fail_read_at = 4;
    ranks.push_back(std::make_unique<FaultyStripeFixture>(9000, options));
    ASSERT_TRUE(ranks.back()->file.ok());
    providers.push_back(std::make_unique<StripedFileProvider<uint64_t>>(
        &*ranks.back()->file));
    shards.push_back(providers.back().get());
  }
  Cluster::Options cluster_options;
  cluster_options.num_processors = p;
  Cluster cluster(cluster_options);
  ParallelOpaqOptions options;
  options.config.run_size = FaultyStripeFixture::kRunSize;
  options.config.samples_per_run = 100;
  options.config.io_mode = IoMode::kAsync;
  options.config.prefetch_depth = 2;
  auto result = RunParallelOpaq(cluster, shards, options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

// ---------------------------------------------- Compressed extents --

// A compressed extent file striped over 3 devices with stripe 1 wrapped in
// a FaultyDevice — one disk of a compressed array dying while the others
// stay healthy. extent_elements == run_size, so logical extent e IS run e
// and lives on stripe e % 3. Open costs each stripe exactly 3 reads
// (header, directory, directory CRC) and every extent exactly 1, so
// failing stripe 1's read #k kills extent (run) 1 + 3*(k - 4).
struct FaultyExtentFixture {
  static constexpr uint64_t kRunSize = 500;
  static constexpr int kStripes = 3;

  std::vector<std::unique_ptr<BlockDevice>> devices;
  FaultyDevice* faulty = nullptr;  // borrowed view of devices[1]
  Result<ExtentFile> file = Status::Internal("unset");

  FaultyExtentFixture(uint64_t n, FaultyDevice::Options options) {
    std::vector<std::unique_ptr<MemoryBlockDevice>> memory;
    std::vector<BlockDevice*> raw;
    for (int s = 0; s < kStripes; ++s) {
      memory.push_back(std::make_unique<MemoryBlockDevice>());
      raw.push_back(memory.back().get());
    }
    DatasetSpec spec;
    spec.n = n;
    spec.distribution = Distribution::kZipf;  // so delta actually packs
    ExtentWriterOptions writer_options;
    writer_options.extent_elements = kRunSize;
    writer_options.codec = ExtentCodec::kDelta;
    OPAQ_CHECK_OK(WriteExtents(GenerateDataset<uint64_t>(spec), raw,
                               writer_options)
                      .status());
    for (int s = 0; s < kStripes; ++s) {
      if (s == 1) {
        auto wrapped = std::make_unique<FaultyDevice>(std::move(memory[1]),
                                                      options);
        faulty = wrapped.get();
        devices.push_back(std::move(wrapped));
      } else {
        devices.push_back(std::move(memory[static_cast<size_t>(s)]));
      }
    }
    std::vector<BlockDevice*> opened;
    for (auto& device : devices) opened.push_back(device.get());
    file = ExtentFile::Open(opened);
  }
};

TEST(FailureInjectionTest, ExtentOpenFailsWhenStripeHeaderDies) {
  FaultyExtentFixture f(6000, FailReadAt(1));
  EXPECT_FALSE(f.file.ok());
  EXPECT_EQ(f.file.status().code(), StatusCode::kIoError);
}

TEST(FailureInjectionTest, ExtentOpenFailsWhenDirectoryReadDies) {
  // Reads 2 and 3 are the directory and its CRC — Open must fail cleanly
  // on either, before any extent is ever served.
  for (uint64_t read : {2u, 3u}) {
    FaultyExtentFixture f(6000, FailReadAt(read));
    EXPECT_FALSE(f.file.ok()) << "read " << read;
    EXPECT_EQ(f.file.status().code(), StatusCode::kIoError) << "read "
                                                            << read;
  }
}

TEST(FailureInjectionTest, ExtentConsumeSurfacesStripeDeath) {
  // Kill stripe 1 on its second data extent (read #5 = extent 4): exactly
  // runs 0-3 must be consumed, the error surfaces as a clean Status from
  // Consume, and every decode thread is joined by then (asan/tsan gate
  // leaks) — at every prefetch depth, threaded and inline.
  for (IoMode io_mode : {IoMode::kSync, IoMode::kAsync}) {
    for (uint64_t depth : {1u, 2u, 8u}) {
      FaultyExtentFixture f(6000, FailReadAt(5));
      ASSERT_TRUE(f.file.ok()) << f.file.status().ToString();
      OpaqConfig config;
      config.run_size = FaultyExtentFixture::kRunSize;
      config.samples_per_run = 100;
      config.io_mode = io_mode;
      config.prefetch_depth = depth;
      OpaqSketch<uint64_t> sketch(config);
      Status s = sketch.Consume(ExtentFileProvider<uint64_t>(&*f.file));
      EXPECT_FALSE(s.ok()) << IoModeName(io_mode) << " depth " << depth;
      EXPECT_EQ(s.code(), StatusCode::kIoError)
          << IoModeName(io_mode) << " depth " << depth;
      EXPECT_EQ(sketch.runs_consumed(), 4u)
          << IoModeName(io_mode) << " depth " << depth;
      EXPECT_EQ(sketch.elements_consumed(),
                4 * FaultyExtentFixture::kRunSize)
          << IoModeName(io_mode) << " depth " << depth;
      if (io_mode == IoMode::kSync) break;  // depth is a no-op inline
    }
  }
}

TEST(FailureInjectionTest, ExtentReaderKeepsReportingErrorAfterFailure) {
  // Both decoding modes must latch a mid-extent device error: a retried
  // NextRun must not silently resume the packed stream.
  for (bool threaded : {true, false}) {
    FaultyExtentFixture f(6000, FailReadAt(4));  // stripe 1's 1st extent
    ASSERT_TRUE(f.file.ok()) << f.file.status().ToString();
    ExtentReaderOptions options;
    options.prefetch_extents = 2;
    options.threaded = threaded;
    ExtentRunSource<uint64_t> source(&*f.file,
                                     FaultyExtentFixture::kRunSize,
                                     options);
    std::vector<uint64_t> buffer;
    // Run 0 (extent 0, stripe 0) is intact; run 1 dies; so does every
    // later call — even though the FaultyDevice poisons only one read.
    auto first = source.NextRun(&buffer);
    ASSERT_TRUE(first.ok()) << "threaded=" << threaded;
    EXPECT_TRUE(*first);
    EXPECT_EQ(buffer.size(), FaultyExtentFixture::kRunSize);
    for (int i = 0; i < 3; ++i) {
      auto failed = source.NextRun(&buffer);
      EXPECT_FALSE(failed.ok()) << "threaded=" << threaded;
      EXPECT_EQ(failed.status().code(), StatusCode::kIoError)
          << "threaded=" << threaded;
    }
  }
}

TEST(FailureInjectionTest, ExtentReaderAbandonedAfterErrorDoesNotHang) {
  // Let a decode thread fail, never consume, destroy: the destructor must
  // close every channel and join every thread.
  FaultyExtentFixture f(6000, FailReadAt(4));
  ASSERT_TRUE(f.file.ok()) << f.file.status().ToString();
  ExtentReaderOptions options;
  options.prefetch_extents = 8;
  ExtentRunSource<uint64_t> source(&*f.file, 250, options);
  // No NextRun at all.
}

TEST(FailureInjectionTest, ExtentShortReadSurfacesAsError) {
  // The compressed array opens healthy, then one stripe physically shrinks
  // behind the reader's back: the intact prefix runs arrive, then
  // OutOfRange — never partial or misdecoded data.
  FaultyExtentFixture f(6000, {});
  ASSERT_TRUE(f.file.ok()) << f.file.status().ToString();
  // Keep stripe 1's header plus its first stored extent (extent 1), so
  // extent 4 is the first to fall off the end.
  f.faulty->set_truncate_after_bytes(sizeof(ExtentFileHeader) +
                                     f.file->StoredExtentBytes(1));
  OpaqConfig config;
  config.run_size = FaultyExtentFixture::kRunSize;
  config.samples_per_run = 100;
  config.io_mode = IoMode::kAsync;
  config.prefetch_depth = 2;
  OpaqSketch<uint64_t> sketch(config);
  Status s = sketch.Consume(ExtentFileProvider<uint64_t>(&*f.file));
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(sketch.runs_consumed(), 4u);  // runs 0-3; run 4 was truncated
}

TEST(FailureInjectionTest, ExtentExactSecondPassSurfacesError) {
  FaultyExtentFixture healthy(6000, {});
  ASSERT_TRUE(healthy.file.ok());
  OpaqConfig config;
  config.run_size = FaultyExtentFixture::kRunSize;
  config.samples_per_run = 100;
  OpaqSketch<uint64_t> sketch(config);
  ASSERT_TRUE(
      sketch.Consume(ExtentFileProvider<uint64_t>(&*healthy.file)).ok());
  auto estimate = sketch.Finalize().Quantile(0.5);

  FaultyExtentFixture faulty(6000, FailReadAt(5));
  ASSERT_TRUE(faulty.file.ok());
  ExtentFileProvider<uint64_t> provider(&*faulty.file);
  ReadOptions options;
  options.run_size = FaultyExtentFixture::kRunSize;
  options.io_mode = IoMode::kAsync;
  auto exact = ExactQuantileSecondPass(provider, estimate, options);
  EXPECT_FALSE(exact.ok());
  EXPECT_EQ(exact.status().code(), StatusCode::kIoError);
}

TEST(FailureInjectionTest, SingleStripeExtentAsyncSurfacesError) {
  // The 1-stripe compressed path (one decode thread) must behave exactly
  // like the striped one: intact prefix, clean sticky error, joined thread.
  auto memory = std::make_unique<MemoryBlockDevice>();
  DatasetSpec spec;
  spec.n = 4000;
  spec.distribution = Distribution::kZipf;
  ExtentWriterOptions writer_options;
  writer_options.extent_elements = 500;
  writer_options.codec = ExtentCodec::kDelta;
  OPAQ_CHECK_OK(WriteExtents(GenerateDataset<uint64_t>(spec),
                             {memory.get()}, writer_options)
                    .status());
  // Reads 1-3 open the file; read #6 is extent 2.
  FaultyDevice faulty(std::move(memory), FailReadAt(6));
  auto file = ExtentFile::Open({&faulty});
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  OpaqConfig config;
  config.run_size = 500;
  config.samples_per_run = 100;
  config.io_mode = IoMode::kAsync;
  config.prefetch_depth = 2;
  OpaqSketch<uint64_t> sketch(config);
  Status s = sketch.Consume(ExtentFileProvider<uint64_t>(&*file));
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(sketch.runs_consumed(), 2u);
  EXPECT_EQ(sketch.elements_consumed(), 1000u);
}

}  // namespace
}  // namespace opaq

