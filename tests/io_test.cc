// Unit tests for src/io: block devices, throttling, data files, run readers.

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <numeric>

#include "io/block_device.h"
#include "io/data_file.h"
#include "io/run_reader.h"
#include "io/tempdir.h"
#include "io/throttled_device.h"
#include "util/timer.h"

namespace opaq {
namespace {

// ---------------------------------------------------------------- Devices --

TEST(MemoryBlockDeviceTest, WriteThenReadRoundTrips) {
  MemoryBlockDevice dev;
  const char data[] = "hello, disk";
  ASSERT_TRUE(dev.WriteAt(0, data, sizeof(data)).ok());
  char buf[sizeof(data)] = {0};
  ASSERT_TRUE(dev.ReadAt(0, buf, sizeof(data)).ok());
  EXPECT_STREQ(buf, "hello, disk");
}

TEST(MemoryBlockDeviceTest, WriteExtendsSize) {
  MemoryBlockDevice dev;
  uint64_t x = 42;
  ASSERT_TRUE(dev.WriteAt(100, &x, sizeof(x)).ok());
  auto size = dev.Size();
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 108u);
}

TEST(MemoryBlockDeviceTest, ReadPastEndFails) {
  MemoryBlockDevice dev;
  uint64_t x = 1;
  ASSERT_TRUE(dev.WriteAt(0, &x, sizeof(x)).ok());
  char buf[16];
  Status s = dev.ReadAt(4, buf, 16);
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
}

TEST(MemoryBlockDeviceTest, CountsStats) {
  MemoryBlockDevice dev;
  uint64_t x = 7;
  ASSERT_TRUE(dev.WriteAt(0, &x, 8).ok());
  ASSERT_TRUE(dev.WriteAt(8, &x, 8).ok());
  ASSERT_TRUE(dev.ReadAt(0, &x, 8).ok());
  EXPECT_EQ(dev.stats().write_requests.load(), 2u);
  EXPECT_EQ(dev.stats().bytes_written.load(), 16u);
  EXPECT_EQ(dev.stats().read_requests.load(), 1u);
  EXPECT_EQ(dev.stats().bytes_read.load(), 8u);
}

TEST(FileBlockDeviceTest, CreateWriteReadReopen) {
  auto dir = TempDir::Make();
  ASSERT_TRUE(dir.ok());
  const std::string path = dir->FilePath("dev.bin");
  {
    auto dev = FileBlockDevice::Make(path, FileBlockDevice::Mode::kCreate);
    ASSERT_TRUE(dev.ok());
    int values[4] = {1, 2, 3, 4};
    ASSERT_TRUE((*dev)->WriteAt(0, values, sizeof(values)).ok());
    ASSERT_TRUE((*dev)->Sync().ok());
  }
  {
    auto dev = FileBlockDevice::Make(path, FileBlockDevice::Mode::kOpen);
    ASSERT_TRUE(dev.ok());
    int values[4] = {0};
    ASSERT_TRUE((*dev)->ReadAt(0, values, sizeof(values)).ok());
    EXPECT_EQ(values[0], 1);
    EXPECT_EQ(values[3], 4);
    auto size = (*dev)->Size();
    ASSERT_TRUE(size.ok());
    EXPECT_EQ(*size, sizeof(values));
  }
}

TEST(FileBlockDeviceTest, OpenMissingFileFails) {
  auto dev = FileBlockDevice::Make("/nonexistent/nope.bin",
                                   FileBlockDevice::Mode::kOpen);
  ASSERT_FALSE(dev.ok());
  EXPECT_EQ(dev.status().code(), StatusCode::kIoError);
}

TEST(FileBlockDeviceTest, ReadPastEndFails) {
  auto dir = TempDir::Make();
  ASSERT_TRUE(dir.ok());
  auto dev = FileBlockDevice::Make(dir->FilePath("s.bin"),
                                   FileBlockDevice::Mode::kCreate);
  ASSERT_TRUE(dev.ok());
  char c = 'x';
  ASSERT_TRUE((*dev)->WriteAt(0, &c, 1).ok());
  char buf[8];
  EXPECT_EQ((*dev)->ReadAt(0, buf, 8).code(), StatusCode::kOutOfRange);
}

// ------------------------------------------------------------- Throttling --

TEST(ThrottledDeviceTest, AccountModeChargesModelTime) {
  DiskModel model;
  model.bandwidth_bytes_per_second = 1024 * 1024;  // 1 MB/s
  model.latency_seconds = 0.001;
  ThrottledDevice dev(std::make_unique<MemoryBlockDevice>(), model,
                      ThrottledDevice::Mode::kAccount);
  std::vector<uint8_t> buf(1024 * 1024, 0xAB);
  ASSERT_TRUE(dev.WriteAt(0, buf.data(), buf.size()).ok());
  ASSERT_TRUE(dev.ReadAt(0, buf.data(), buf.size()).ok());
  // Two requests of 1MB at 1MB/s: ~2.002s modeled, ~0 wall.
  EXPECT_NEAR(dev.modeled_seconds(), 2.002, 0.01);
}

TEST(ThrottledDeviceTest, SleepModeActuallyDelays) {
  DiskModel model;
  model.bandwidth_bytes_per_second = 10.0 * 1024 * 1024;
  model.latency_seconds = 0;
  ThrottledDevice dev(std::make_unique<MemoryBlockDevice>(), model,
                      ThrottledDevice::Mode::kSleep);
  std::vector<uint8_t> buf(1024 * 1024, 1);
  WallTimer t;
  ASSERT_TRUE(dev.WriteAt(0, buf.data(), buf.size()).ok());
  // 1MB at 10MB/s = 100ms.
  EXPECT_GE(t.ElapsedSeconds(), 0.08);
}

TEST(ThrottledDeviceTest, ForwardsErrors) {
  DiskModel model;
  ThrottledDevice dev(std::make_unique<MemoryBlockDevice>(), model,
                      ThrottledDevice::Mode::kAccount);
  char buf[8];
  EXPECT_FALSE(dev.ReadAt(0, buf, 8).ok());
}

// -------------------------------------------------------------- DataFile --

TEST(DataFileTest, CreateAndReadBackTyped) {
  MemoryBlockDevice dev;
  std::vector<uint64_t> values(1000);
  std::iota(values.begin(), values.end(), 0);
  auto file = TypedDataFile<uint64_t>::Create(&dev, values.size());
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file->Write(0, values).ok());

  auto reopened = TypedDataFile<uint64_t>::Open(&dev);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->size(), 1000u);
  auto all = reopened->ReadAll();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, values);
}

TEST(DataFileTest, RejectsWrongKeyType) {
  MemoryBlockDevice dev;
  auto file = TypedDataFile<uint64_t>::Create(&dev, 0);
  ASSERT_TRUE(file.ok());
  auto wrong = TypedDataFile<double>::Open(&dev);
  EXPECT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.status().code(), StatusCode::kInvalidArgument);
}

TEST(DataFileTest, RejectsGarbageHeader) {
  MemoryBlockDevice dev;
  std::vector<uint8_t> junk(64, 0xFF);
  ASSERT_TRUE(dev.WriteAt(0, junk.data(), junk.size()).ok());
  auto file = DataFile::Open(&dev);
  EXPECT_FALSE(file.ok());
}

TEST(DataFileTest, RejectsTruncatedFile) {
  MemoryBlockDevice dev;
  {
    auto file = TypedDataFile<uint64_t>::Create(&dev, 100);
    ASSERT_TRUE(file.ok());
    // Claim 100 elements but write none: Open must notice.
  }
  auto reopened = DataFile::Open(&dev);
  EXPECT_FALSE(reopened.ok());
}

TEST(DataFileTest, RejectsTooSmallDevice) {
  MemoryBlockDevice dev;
  char c = 1;
  ASSERT_TRUE(dev.WriteAt(0, &c, 1).ok());
  EXPECT_FALSE(DataFile::Open(&dev).ok());
}

TEST(DataFileTest, AppendGrowsCount) {
  MemoryBlockDevice dev;
  auto file = TypedDataFile<uint32_t>::Create(&dev, 0);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file->Append({1, 2, 3}).ok());
  ASSERT_TRUE(file->Append({4, 5}).ok());
  EXPECT_EQ(file->size(), 5u);
  auto all = file->ReadAll();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, (std::vector<uint32_t>{1, 2, 3, 4, 5}));
}

TEST(DataFileTest, ElementReadPastEndFails) {
  MemoryBlockDevice dev;
  auto file = TypedDataFile<uint32_t>::Create(&dev, 0);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file->Append({1, 2, 3}).ok());
  uint32_t buf[4];
  EXPECT_EQ(file->Read(1, 3, buf).code(), StatusCode::kOutOfRange);
}

TEST(DataFileTest, FloatKeysRoundTrip) {
  MemoryBlockDevice dev;
  auto file = TypedDataFile<double>::Create(&dev, 0);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file->Append({0.5, -1.25, 3.75}).ok());
  auto all = file->ReadAll();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, (std::vector<double>{0.5, -1.25, 3.75}));
}

// ------------------------------------------------------------- RunReader --

TEST(RunReaderTest, SplitsIntoExactRuns) {
  MemoryBlockDevice dev;
  std::vector<uint64_t> values(100);
  std::iota(values.begin(), values.end(), 0);
  auto file = TypedDataFile<uint64_t>::Create(&dev, 0);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file->Append(values).ok());

  RunReader<uint64_t> reader(&*file, 25);
  EXPECT_EQ(reader.num_runs(), 4u);
  std::vector<uint64_t> buffer;
  int runs = 0;
  uint64_t next_expected = 0;
  while (true) {
    auto more = reader.NextRun(&buffer);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    EXPECT_EQ(buffer.size(), 25u);
    for (uint64_t v : buffer) EXPECT_EQ(v, next_expected++);
    ++runs;
  }
  EXPECT_EQ(runs, 4);
  EXPECT_EQ(next_expected, 100u);
}

TEST(RunReaderTest, ShortTailRun) {
  MemoryBlockDevice dev;
  std::vector<uint64_t> values(10);
  std::iota(values.begin(), values.end(), 0);
  auto file = TypedDataFile<uint64_t>::Create(&dev, 0);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file->Append(values).ok());

  RunReader<uint64_t> reader(&*file, 4);
  EXPECT_EQ(reader.num_runs(), 3u);
  std::vector<uint64_t> buffer;
  std::vector<size_t> lengths;
  while (true) {
    auto more = reader.NextRun(&buffer);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    lengths.push_back(buffer.size());
  }
  EXPECT_EQ(lengths, (std::vector<size_t>{4, 4, 2}));
}

TEST(RunReaderTest, SubRangeReading) {
  MemoryBlockDevice dev;
  std::vector<uint64_t> values(100);
  std::iota(values.begin(), values.end(), 0);
  auto file = TypedDataFile<uint64_t>::Create(&dev, 0);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file->Append(values).ok());

  // Read only elements [30, 70) as runs of 20.
  RunReader<uint64_t> reader(&*file, 20, 30, 40);
  std::vector<uint64_t> buffer;
  std::vector<uint64_t> seen;
  while (true) {
    auto more = reader.NextRun(&buffer);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    seen.insert(seen.end(), buffer.begin(), buffer.end());
  }
  ASSERT_EQ(seen.size(), 40u);
  EXPECT_EQ(seen.front(), 30u);
  EXPECT_EQ(seen.back(), 69u);
}

TEST(RunReaderTest, SubRangePartitionBoundaryMidRun) {
  // A partition whose boundary falls mid-run: the last run must be cut
  // short at the boundary, reading exactly `count` elements — never into
  // the neighbor's partition. Device byte accounting proves no over-read.
  MemoryBlockDevice dev;
  std::vector<uint64_t> values(100);
  std::iota(values.begin(), values.end(), 0);
  auto file = TypedDataFile<uint64_t>::Create(&dev, 0);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file->Append(values).ok());

  // Partition [40, 65) as runs of 16: 16 + 9, boundary mid-second-run.
  RunReader<uint64_t> reader(&*file, 16, 40, 25);
  EXPECT_EQ(reader.num_runs(), 2u);
  EXPECT_EQ(reader.remaining(), 25u);
  const uint64_t bytes_before = dev.stats().bytes_read.load();
  std::vector<uint64_t> buffer;
  std::vector<size_t> lengths;
  std::vector<uint64_t> seen;
  while (true) {
    auto more = reader.NextRun(&buffer);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    lengths.push_back(buffer.size());
    seen.insert(seen.end(), buffer.begin(), buffer.end());
  }
  EXPECT_EQ(lengths, (std::vector<size_t>{16, 9}));
  ASSERT_EQ(seen.size(), 25u);
  EXPECT_EQ(seen.front(), 40u);
  EXPECT_EQ(seen.back(), 64u);  // stops before the neighbor's element 65
  EXPECT_EQ(dev.stats().bytes_read.load() - bytes_before,
            25u * sizeof(uint64_t));
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(RunReaderTest, SubRangeHugeCountClampsToEof) {
  // Regression: a large (non-sentinel) count used to be added to `first`
  // and wrap around uint64, putting the partition end *before* its start —
  // remaining() underflowed and the partition read nothing. Any oversized
  // count must mean "to end of file".
  MemoryBlockDevice dev;
  std::vector<uint64_t> values(100);
  std::iota(values.begin(), values.end(), 0);
  auto file = TypedDataFile<uint64_t>::Create(&dev, 0);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file->Append(values).ok());

  RunReader<uint64_t> reader(&*file, 32, 90, UINT64_MAX - 5);
  EXPECT_EQ(reader.remaining(), 10u);
  EXPECT_EQ(reader.num_runs(), 1u);
  std::vector<uint64_t> buffer;
  auto more = reader.NextRun(&buffer);
  ASSERT_TRUE(more.ok());
  ASSERT_TRUE(*more);
  EXPECT_EQ(buffer.size(), 10u);
  EXPECT_EQ(buffer.front(), 90u);
  EXPECT_EQ(buffer.back(), 99u);
  auto end = reader.NextRun(&buffer);
  ASSERT_TRUE(end.ok());
  EXPECT_FALSE(*end);
}

TEST(RunReaderTest, EmptyFileYieldsNoRuns) {
  MemoryBlockDevice dev;
  auto file = TypedDataFile<uint64_t>::Create(&dev, 0);
  ASSERT_TRUE(file.ok());
  RunReader<uint64_t> reader(&*file, 10);
  EXPECT_EQ(reader.num_runs(), 0u);
  std::vector<uint64_t> buffer;
  auto more = reader.NextRun(&buffer);
  ASSERT_TRUE(more.ok());
  EXPECT_FALSE(*more);
}

// --------------------------------------------------------------- TempDir --

TEST(TempDirTest, CreatesAndRemoves) {
  std::string path;
  {
    auto dir = TempDir::Make("opaqtest");
    ASSERT_TRUE(dir.ok());
    path = dir->path();
    EXPECT_TRUE(std::filesystem::exists(path));
    // Touch a file inside to verify recursive removal.
    auto dev = FileBlockDevice::Make(dir->FilePath("f.bin"),
                                     FileBlockDevice::Mode::kCreate);
    ASSERT_TRUE(dev.ok());
  }
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(TempDirTest, MoveTransfersOwnership) {
  auto dir = TempDir::Make();
  ASSERT_TRUE(dir.ok());
  std::string path = dir->path();
  TempDir moved = std::move(*dir);
  EXPECT_EQ(moved.path(), path);
  EXPECT_TRUE(std::filesystem::exists(path));
}

}  // namespace
}  // namespace opaq
