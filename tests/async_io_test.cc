// Sync-vs-async equivalence and overlap tests for the double-buffered run
// pipeline: for any config and seed the async path must produce bit-identical
// estimator state (prefetching reorders time, never data), and on a slow-disk
// model it must actually overlap device time with compute.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "core/opaq.h"
#include "core/sketch_io.h"
#include "data/dataset.h"
#include "io/async_run_reader.h"
#include "io/block_device.h"
#include "io/throttled_device.h"
#include "parallel/parallel_opaq.h"
#include "util/timer.h"

namespace opaq {
namespace {

using Key = uint64_t;

// A data file on its own memory device, kept alive together.
struct MemoryFile {
  std::unique_ptr<MemoryBlockDevice> device;
  Result<TypedDataFile<Key>> file = Status::Internal("unset");

  explicit MemoryFile(const DatasetSpec& spec)
      : device(std::make_unique<MemoryBlockDevice>()) {
    OPAQ_CHECK_OK(GenerateDatasetToDevice<Key>(spec, device.get()));
    file = TypedDataFile<Key>::Open(device.get());
    OPAQ_CHECK_OK(file.status());
  }
};

// Runs the full one-pass sample phase and serializes the finalized state:
// the strongest equality we can assert is that the persisted sketch bytes
// match exactly.
std::vector<uint8_t> SketchBytes(const TypedDataFile<Key>* file,
                                 const OpaqConfig& config) {
  OpaqSketch<Key> sketch(config);
  OPAQ_CHECK_OK(sketch.Consume(FileRunProvider<Key>(file)));
  SampleList<Key> list = sketch.FinalizeSampleList();
  MemoryBlockDevice out;
  OPAQ_CHECK_OK(SaveSampleList(list, &out));
  auto size = out.Size();
  OPAQ_CHECK_OK(size.status());
  std::vector<uint8_t> bytes(*size);
  OPAQ_CHECK_OK(out.ReadAt(0, bytes.data(), bytes.size()));
  return bytes;
}

TEST(AsyncIoTest, BitExactAcrossConfigSweep) {
  // n not divisible by m, a short last run, n < m, and exact multiples, each
  // against every prefetch depth the issue calls out.
  struct Case {
    uint64_t n, run_size, samples;
    Distribution distribution;
  };
  const Case kCases[] = {
      {10000, 1000, 100, Distribution::kUniform},   // divisible
      {9999, 1000, 100, Distribution::kZipf},       // ragged tail (999)
      {10001, 1000, 100, Distribution::kNormal},    // tail of one element
      {500, 1000, 100, Distribution::kSequential},  // single short run
      {1, 64, 8, Distribution::kConstant},          // single element
      {4096, 512, 64, Distribution::kSawtooth},     // many small runs
  };
  for (const Case& c : kCases) {
    DatasetSpec spec;
    spec.n = c.n;
    spec.distribution = c.distribution;
    spec.seed = 7 + c.n;
    MemoryFile data(spec);

    OpaqConfig config;
    config.run_size = c.run_size;
    config.samples_per_run = c.samples;
    config.seed = 99;
    config.io_mode = IoMode::kSync;
    const std::vector<uint8_t> sync_bytes = SketchBytes(&*data.file, config);

    for (uint64_t depth : {1u, 2u, 4u, 8u}) {
      config.io_mode = IoMode::kAsync;
      config.prefetch_depth = depth;
      EXPECT_EQ(SketchBytes(&*data.file, config), sync_bytes)
          << "n=" << c.n << " m=" << c.run_size << " depth=" << depth;
    }
  }
}

TEST(AsyncIoTest, BitExactMultiProcessor) {
  // The parallel sample phase must also be invariant to the I/O mode: same
  // per-rank files, same seeds => identical quantile answers and accounting.
  const int p = 4;
  std::vector<std::unique_ptr<MemoryFile>> ranks;
  std::vector<FileRunProvider<Key>> providers;
  providers.reserve(p);
  for (int r = 0; r < p; ++r) {
    DatasetSpec spec;
    spec.n = 20000 + 777 * r;  // ragged everywhere
    spec.distribution = r % 2 ? Distribution::kZipf : Distribution::kUniform;
    spec.seed = 1000 + r;
    ranks.push_back(std::make_unique<MemoryFile>(spec));
    providers.emplace_back(&*ranks.back()->file);
  }
  std::vector<const RunProvider<Key>*> files;
  for (const auto& provider : providers) files.push_back(&provider);

  auto run = [&](IoMode mode, uint64_t depth) {
    Cluster::Options cluster_options;
    cluster_options.num_processors = p;
    Cluster cluster(cluster_options);
    ParallelOpaqOptions options;
    options.config.run_size = 2048;
    options.config.samples_per_run = 128;
    options.config.io_mode = mode;
    options.config.prefetch_depth = depth;
    auto result = RunParallelOpaq(cluster, files, options);
    OPAQ_CHECK_OK(result.status());
    return std::move(result).value();
  };

  ParallelOpaqResult<Key> sync = run(IoMode::kSync, 2);
  for (uint64_t depth : {1u, 4u}) {
    ParallelOpaqResult<Key> async_result = run(IoMode::kAsync, depth);
    ASSERT_EQ(async_result.estimates.size(), sync.estimates.size());
    for (size_t i = 0; i < sync.estimates.size(); ++i) {
      EXPECT_EQ(async_result.estimates[i].lower, sync.estimates[i].lower);
      EXPECT_EQ(async_result.estimates[i].upper, sync.estimates[i].upper);
      EXPECT_EQ(async_result.estimates[i].lower_index,
                sync.estimates[i].lower_index);
      EXPECT_EQ(async_result.estimates[i].upper_index,
                sync.estimates[i].upper_index);
      EXPECT_EQ(async_result.estimates[i].target_rank,
                sync.estimates[i].target_rank);
    }
    EXPECT_EQ(async_result.global_accounting.num_samples,
              sync.global_accounting.num_samples);
    EXPECT_EQ(async_result.global_accounting.total_elements,
              sync.global_accounting.total_elements);
  }
}

TEST(AsyncIoTest, AsyncBeatsSyncOnSlowDisk) {
  // Deterministic overlap check: the disk charges a fixed latency per run
  // read (ThrottledDevice kSleep) and the consumer "computes" for a fixed
  // sleep per run, so sync costs ~runs*(read+compute) while async hides the
  // reads behind compute and costs ~read + runs*compute. Both sides are
  // sleeps, so the comparison is robust even on a single loaded core.
  constexpr uint64_t kRuns = 8;
  constexpr uint64_t kRunSize = 2048;
  constexpr auto kComputePerRun = std::chrono::milliseconds(20);
  DiskModel model;
  model.latency_seconds = 0.025;  // 25ms per request, bandwidth negligible
  model.bandwidth_bytes_per_second = 1e12;

  auto memory = std::make_unique<MemoryBlockDevice>();
  DatasetSpec spec;
  spec.n = kRuns * kRunSize;
  OPAQ_CHECK_OK(GenerateDatasetToDevice<Key>(spec, memory.get()));
  ThrottledDevice device(std::move(memory), model,
                         ThrottledDevice::Mode::kSleep);
  auto file = TypedDataFile<Key>::Open(&device);
  ASSERT_TRUE(file.ok());

  auto consume = [&](RunSource<Key>* source) {
    std::vector<Key> buffer;
    uint64_t runs = 0;
    while (true) {
      auto more = source->NextRun(&buffer);
      OPAQ_CHECK_OK(more.status());
      if (!*more) break;
      ++runs;
      std::this_thread::sleep_for(kComputePerRun);  // simulated sampling
    }
    EXPECT_EQ(runs, kRuns);
  };

  WallTimer sync_timer;
  {
    RunReader<Key> reader(&*file, kRunSize);
    consume(&reader);
  }
  const double sync_seconds = sync_timer.ElapsedSeconds();

  WallTimer async_timer;
  {
    AsyncReaderOptions options;
    options.prefetch_depth = 2;
    AsyncRunReader<Key> reader(&*file, kRunSize, options);
    consume(&reader);
  }
  const double async_seconds = async_timer.ElapsedSeconds();

  // Expected ~0.36s sync vs ~0.21s async; demand a comfortable strict gap.
  EXPECT_LT(async_seconds, sync_seconds - 0.04)
      << "sync=" << sync_seconds << "s async=" << async_seconds << "s";
}

TEST(AsyncIoTest, DepthLargerThanRunCount) {
  DatasetSpec spec;
  spec.n = 300;  // 3 runs of 100
  MemoryFile data(spec);
  AsyncReaderOptions options;
  options.prefetch_depth = 16;
  AsyncRunReader<Key> reader(&*data.file, 100, options);
  std::vector<Key> buffer;
  int runs = 0;
  while (true) {
    auto more = reader.NextRun(&buffer);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    ++runs;
  }
  EXPECT_EQ(runs, 3);
  // Exhausted source keeps reporting EOF, not an error.
  auto again = reader.NextRun(&buffer);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(*again);
}

TEST(AsyncIoTest, EmptyFileYieldsNoRuns) {
  auto device = std::make_unique<MemoryBlockDevice>();
  auto created = TypedDataFile<Key>::Create(device.get(), 0);
  ASSERT_TRUE(created.ok());
  AsyncRunReader<Key> reader(&*created, 128);
  std::vector<Key> buffer;
  auto more = reader.NextRun(&buffer);
  ASSERT_TRUE(more.ok());
  EXPECT_FALSE(*more);
}

TEST(AsyncIoTest, AbandonedMidStreamJoinsCleanly) {
  // Destroying the reader with most runs unconsumed (and the prefetch ring
  // full) must close the pipeline and join the thread — no hang, no leak
  // (the asan/tsan presets gate this).
  DatasetSpec spec;
  spec.n = 64 * 1024;
  MemoryFile data(spec);
  for (uint64_t depth : {1u, 4u}) {
    AsyncReaderOptions options;
    options.prefetch_depth = depth;
    AsyncRunReader<Key> reader(&*data.file, 1024, options);
    std::vector<Key> buffer;
    auto more = reader.NextRun(&buffer);
    ASSERT_TRUE(more.ok());
    EXPECT_TRUE(*more);
    // Drop the reader with ~63 runs still pending.
  }
}

TEST(AsyncIoTest, ValidateRejectsBadPrefetchDepth) {
  OpaqConfig config;
  config.io_mode = IoMode::kAsync;
  config.prefetch_depth = 0;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
  // A negative CLI flag cast to uint64 must be caught, not allocate.
  config.prefetch_depth = static_cast<uint64_t>(-1);
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
  config.prefetch_depth = kMaxPrefetchDepth;
  EXPECT_TRUE(config.Validate().ok());
  // In sync mode the knob is ignored, so even a bogus value passes.
  config.io_mode = IoMode::kSync;
  config.prefetch_depth = 0;
  EXPECT_TRUE(config.Validate().ok());
  // Stripe count is range-checked regardless of mode.
  config.stripes = 0;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
  config.stripes = kMaxStripes + 1;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
  config.stripes = kMaxStripes;
  EXPECT_TRUE(config.Validate().ok());
}

TEST(AsyncIoTest, ValidateChargesStripedPrefetchMemory) {
  // The §2.3 budget must charge stripes * prefetch_depth in-flight chunk
  // buffers (at the chunk <= run_size layout) on top of the run being
  // assembled: a budget that fits plain async can be blown by striping.
  OpaqConfig config;
  config.run_size = 1000;
  config.samples_per_run = 100;
  config.io_mode = IoMode::kAsync;
  config.prefetch_depth = 2;
  const uint64_t n = 10000;  // 10 runs => r*s = 1000
  // Plain async needs 1000 + 3*1000; give exactly that.
  EXPECT_TRUE(config.Validate(n, 4000).ok());
  config.stripes = 8;  // now 1000 + (8*2 + 1)*1000
  EXPECT_EQ(config.Validate(n, 4000).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(config.Validate(n, 18000).ok());
}

TEST(AsyncIoTest, SubRangeMatchesSyncReader) {
  // The async reader honors the same first/count partition contract.
  DatasetSpec spec;
  spec.n = 1000;
  spec.distribution = Distribution::kSequential;
  MemoryFile data(spec);

  auto drain = [](RunSource<Key>* source) {
    std::vector<Key> buffer, seen;
    while (true) {
      auto more = source->NextRun(&buffer);
      OPAQ_CHECK_OK(more.status());
      if (!*more) break;
      seen.insert(seen.end(), buffer.begin(), buffer.end());
    }
    return seen;
  };

  RunReader<Key> sync_reader(&*data.file, 64, 130, 333);
  std::vector<Key> expected = drain(&sync_reader);
  AsyncReaderOptions options;
  options.prefetch_depth = 3;
  AsyncRunReader<Key> async_reader(&*data.file, 64, options, 130, 333);
  EXPECT_EQ(drain(&async_reader), expected);
}

}  // namespace
}  // namespace opaq
