// Tests for sketch persistence (core/sketch_io.h) and the batch exact
// second pass (core/exact.h, plural variant), including the golden-blob
// regression that pins the on-disk format byte for byte.

#include <gtest/gtest.h>

#include <cstddef>
#include <fstream>
#include <numeric>

#include "core/exact.h"
#include "core/opaq.h"
#include "core/sketch_io.h"
#include "data/dataset.h"
#include "io/tempdir.h"
#include "metrics/ground_truth.h"
#include "metrics/rer.h"

namespace opaq {
namespace {

SampleList<uint64_t> MakeList(uint64_t n = 20000) {
  DatasetSpec spec;
  spec.n = n;
  spec.distribution = Distribution::kZipf;
  auto data = GenerateDataset<uint64_t>(spec);
  OpaqConfig config;
  config.run_size = 2000;
  config.samples_per_run = 100;
  OpaqEstimator<uint64_t> est = EstimateQuantilesInMemory(data, config);
  return est.sample_list();
}

TEST(SketchIoTest, SaveLoadRoundTripsExactly) {
  SampleList<uint64_t> list = MakeList();
  MemoryBlockDevice dev;
  ASSERT_TRUE(SaveSampleList(list, &dev).ok());
  auto loaded = LoadSampleList<uint64_t>(&dev);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->samples(), list.samples());
  EXPECT_EQ(loaded->accounting().subrun_size, list.accounting().subrun_size);
  EXPECT_EQ(loaded->accounting().num_runs, list.accounting().num_runs);
  EXPECT_EQ(loaded->accounting().num_samples,
            list.accounting().num_samples);
  EXPECT_EQ(loaded->accounting().num_uncovered,
            list.accounting().num_uncovered);
  EXPECT_EQ(loaded->total_elements(), list.total_elements());
}

TEST(SketchIoTest, RoundTripsThroughRealFile) {
  auto dir = TempDir::Make();
  ASSERT_TRUE(dir.ok());
  SampleList<uint64_t> list = MakeList();
  {
    auto dev = FileBlockDevice::Make(dir->FilePath("s.sketch"),
                                     FileBlockDevice::Mode::kCreate);
    ASSERT_TRUE(dev.ok());
    ASSERT_TRUE(SaveSampleList(list, dev->get()).ok());
  }
  auto dev = FileBlockDevice::Make(dir->FilePath("s.sketch"),
                                   FileBlockDevice::Mode::kOpen);
  ASSERT_TRUE(dev.ok());
  auto loaded = LoadSampleList<uint64_t>(dev->get());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->samples(), list.samples());
}

TEST(SketchIoTest, LoadedSketchAnswersIdentically) {
  SampleList<uint64_t> list = MakeList();
  MemoryBlockDevice dev;
  ASSERT_TRUE(SaveSampleList(list, &dev).ok());
  auto loaded = LoadSampleList<uint64_t>(&dev);
  ASSERT_TRUE(loaded.ok());
  OpaqEstimator<uint64_t> a{list};
  OpaqEstimator<uint64_t> b{std::move(loaded).value()};
  for (int d = 1; d <= 9; ++d) {
    auto ea = a.Quantile(d / 10.0);
    auto eb = b.Quantile(d / 10.0);
    EXPECT_EQ(ea.lower, eb.lower);
    EXPECT_EQ(ea.upper, eb.upper);
  }
}

TEST(SketchIoTest, RejectsWrongKeyType) {
  SampleList<uint64_t> list = MakeList();
  MemoryBlockDevice dev;
  ASSERT_TRUE(SaveSampleList(list, &dev).ok());
  auto loaded = LoadSampleList<double>(&dev);
  EXPECT_FALSE(loaded.ok());
}

TEST(SketchIoTest, RejectsGarbage) {
  MemoryBlockDevice dev;
  std::vector<uint8_t> junk(128, 0x5A);
  ASSERT_TRUE(dev.WriteAt(0, junk.data(), junk.size()).ok());
  EXPECT_FALSE(LoadSampleList<uint64_t>(&dev).ok());
}

TEST(SketchIoTest, RejectsTruncatedSamples) {
  SampleList<uint64_t> list = MakeList();
  MemoryBlockDevice full;
  ASSERT_TRUE(SaveSampleList(list, &full).ok());
  // Copy only the header plus half the samples.
  auto size = full.Size();
  ASSERT_TRUE(size.ok());
  std::vector<uint8_t> bytes(*size / 2);
  ASSERT_TRUE(full.ReadAt(0, bytes.data(), bytes.size()).ok());
  MemoryBlockDevice truncated;
  ASSERT_TRUE(truncated.WriteAt(0, bytes.data(), bytes.size()).ok());
  EXPECT_FALSE(LoadSampleList<uint64_t>(&truncated).ok());
}

TEST(SketchIoTest, RejectsUnsortedSamples) {
  SampleList<uint64_t> list = MakeList();
  MemoryBlockDevice dev;
  ASSERT_TRUE(SaveSampleList(list, &dev).ok());
  // Corrupt two adjacent samples out of order.
  uint64_t big = UINT64_MAX, small = 0;
  ASSERT_TRUE(dev.WriteAt(sizeof(SketchFileHeader), &big, 8).ok());
  ASSERT_TRUE(dev.WriteAt(sizeof(SketchFileHeader) + 8, &small, 8).ok());
  EXPECT_FALSE(LoadSampleList<uint64_t>(&dev).ok());
}

TEST(SketchIoTest, SaveRefusesEmptyList) {
  SampleList<uint64_t> empty;
  MemoryBlockDevice dev;
  EXPECT_FALSE(SaveSampleList(empty, &dev).ok());
}

// --------------------------------------------------- Golden-blob format --

// The exact list persisted in tests/golden/sketch_u64_v1.sketch. If the
// on-disk layout ever drifts (field order, widths, endianness, header
// size), these tests fail in tier-1 instead of silently orphaning every
// stored sketch in the wild.
SampleList<uint64_t> GoldenList() {
  SampleAccounting acc;
  acc.subrun_size = 4;
  acc.num_runs = 2;
  acc.num_samples = 8;
  acc.num_uncovered = 3;
  acc.total_elements = 35;  // 8 * 4 + 3
  return SampleList<uint64_t>({2, 3, 5, 7, 11, 13, 17, 19}, acc);
}

std::vector<uint8_t> GoldenBlobBytes() {
  const std::string path =
      std::string(OPAQ_GOLDEN_DIR) + "/sketch_u64_v1.sketch";
  std::ifstream in(path, std::ios::binary);
  OPAQ_CHECK(in.good()) << "missing golden blob: " << path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

TEST(SketchIoGoldenTest, SaveProducesExactGoldenBytes) {
  MemoryBlockDevice dev;
  ASSERT_TRUE(SaveSampleList(GoldenList(), &dev).ok());
  auto size = dev.Size();
  ASSERT_TRUE(size.ok());
  std::vector<uint8_t> bytes(*size);
  ASSERT_TRUE(dev.ReadAt(0, bytes.data(), bytes.size()).ok());
  EXPECT_EQ(bytes, GoldenBlobBytes())
      << "the sketch serialization format changed; stored sketches would "
         "no longer load. If intentional, bump SketchFileHeader::version "
         "and commit a new golden blob.";
}

TEST(SketchIoGoldenTest, GoldenBlobLoadsAndRoundTrips) {
  std::vector<uint8_t> blob = GoldenBlobBytes();
  MemoryBlockDevice dev;
  ASSERT_TRUE(dev.WriteAt(0, blob.data(), blob.size()).ok());
  auto loaded = LoadSampleList<uint64_t>(&dev);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  SampleList<uint64_t> expected = GoldenList();
  EXPECT_EQ(loaded->samples(), expected.samples());
  EXPECT_EQ(loaded->accounting().subrun_size,
            expected.accounting().subrun_size);
  EXPECT_EQ(loaded->accounting().num_runs, expected.accounting().num_runs);
  EXPECT_EQ(loaded->accounting().num_uncovered,
            expected.accounting().num_uncovered);
  EXPECT_EQ(loaded->total_elements(), expected.total_elements());
  // Round-trip: saving the loaded list reproduces the blob bit for bit.
  MemoryBlockDevice out;
  ASSERT_TRUE(SaveSampleList(*loaded, &out).ok());
  auto size = out.Size();
  ASSERT_TRUE(size.ok());
  std::vector<uint8_t> bytes(*size);
  ASSERT_TRUE(out.ReadAt(0, bytes.data(), bytes.size()).ok());
  EXPECT_EQ(bytes, blob);
}

TEST(SketchIoGoldenTest, HeaderLayoutIsPinned) {
  // Compile-time format contract: offsets/widths the golden blob encodes.
  static_assert(sizeof(SketchFileHeader) == 64);
  static_assert(offsetof(SketchFileHeader, version) == 8);
  static_assert(offsetof(SketchFileHeader, key_type) == 12);
  static_assert(offsetof(SketchFileHeader, subrun_size) == 16);
  static_assert(offsetof(SketchFileHeader, num_runs) == 24);
  static_assert(offsetof(SketchFileHeader, num_samples) == 32);
  static_assert(offsetof(SketchFileHeader, num_uncovered) == 40);
  static_assert(offsetof(SketchFileHeader, total_elements) == 48);
  EXPECT_EQ(SketchFileHeader::kMagic, 0x4f504151534b5431ULL);
}

TEST(SketchIoTest, PersistedIncrementalWorkflow) {
  // The §4 story across "process restarts": save, load, merge new data,
  // save again; final answers equal the one-shot sketch.
  DatasetSpec spec;
  spec.n = 30000;
  auto data = GenerateDataset<uint64_t>(spec);
  OpaqConfig config;
  config.run_size = 3000;
  config.samples_per_run = 150;

  std::vector<uint64_t> first(data.begin(), data.begin() + 15000);
  std::vector<uint64_t> second(data.begin() + 15000, data.end());

  MemoryBlockDevice store;
  {
    OpaqEstimator<uint64_t> est = EstimateQuantilesInMemory(first, config);
    ASSERT_TRUE(SaveSampleList(est.sample_list(), &store).ok());
  }
  {
    auto loaded = LoadSampleList<uint64_t>(&store);
    ASSERT_TRUE(loaded.ok());
    OpaqEstimator<uint64_t> est = EstimateQuantilesInMemory(second, config);
    auto merged = SampleList<uint64_t>::Merge(*loaded, est.sample_list());
    ASSERT_TRUE(merged.ok());
    ASSERT_TRUE(SaveSampleList(*merged, &store).ok());
  }
  auto final_list = LoadSampleList<uint64_t>(&store);
  ASSERT_TRUE(final_list.ok());
  OpaqEstimator<uint64_t> whole = EstimateQuantilesInMemory(data, config);
  EXPECT_EQ(final_list->samples(), whole.sample_list().samples());
}

// ------------------------------------------------- Batch exact second pass --

TEST(BatchExactTest, RecoversAllDectilesInOnePass) {
  DatasetSpec spec;
  spec.n = 50000;
  spec.distribution = Distribution::kUniform;
  auto data = GenerateDataset<uint64_t>(spec);
  MemoryBlockDevice dev;
  ASSERT_TRUE(WriteDataset(data, &dev).ok());
  auto file = TypedDataFile<uint64_t>::Open(&dev);
  ASSERT_TRUE(file.ok());

  OpaqConfig config;
  config.run_size = 5000;
  config.samples_per_run = 250;
  OpaqSketch<uint64_t> sketch(config);
  ASSERT_TRUE(sketch.Consume(FileRunProvider<uint64_t>(&*file)).ok());
  OpaqEstimator<uint64_t> est = sketch.Finalize();
  GroundTruth<uint64_t> truth(data);

  auto estimates = est.EquiQuantiles(10);
  auto exact = ExactQuantilesSecondPass(FileRunProvider<uint64_t>(&*file),
                                        estimates, config.read_options());
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  ASSERT_EQ(exact->size(), 9u);
  for (int d = 1; d <= 9; ++d) {
    EXPECT_EQ((*exact)[d - 1], truth.Quantile(d / 10.0)) << d;
  }
}

TEST(BatchExactTest, MatchesSingleQuantileVariant) {
  DatasetSpec spec;
  spec.n = 20000;
  spec.distribution = Distribution::kZipf;
  auto data = GenerateDataset<uint64_t>(spec);
  MemoryBlockDevice dev;
  ASSERT_TRUE(WriteDataset(data, &dev).ok());
  auto file = TypedDataFile<uint64_t>::Open(&dev);
  ASSERT_TRUE(file.ok());

  OpaqConfig config;
  config.run_size = 2000;
  config.samples_per_run = 100;
  OpaqSketch<uint64_t> sketch(config);
  ASSERT_TRUE(sketch.Consume(FileRunProvider<uint64_t>(&*file)).ok());
  OpaqEstimator<uint64_t> est = sketch.Finalize();
  auto median = est.Quantile(0.5);
  FileRunProvider<uint64_t> provider(&*file);
  auto single =
      ExactQuantileSecondPass(provider, median, config.read_options());
  auto batch = ExactQuantilesSecondPass(
      provider, std::vector<QuantileEstimate<uint64_t>>{median},
      config.read_options());
  ASSERT_TRUE(single.ok());
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->front(), *single);
}

TEST(BatchExactTest, EmptyRequestIsEmptyResult) {
  MemoryBlockDevice dev;
  std::vector<uint64_t> data(100);
  std::iota(data.begin(), data.end(), 0);
  ASSERT_TRUE(WriteDataset(data, &dev).ok());
  auto file = TypedDataFile<uint64_t>::Open(&dev);
  ASSERT_TRUE(file.ok());
  ReadOptions small_runs;
  small_runs.run_size = 10;
  auto exact = ExactQuantilesSecondPass(
      FileRunProvider<uint64_t>(&*file),
      std::vector<QuantileEstimate<uint64_t>>{}, small_runs);
  ASSERT_TRUE(exact.ok());
  EXPECT_TRUE(exact->empty());
}

TEST(BatchExactTest, BudgetCoversAllBrackets) {
  std::vector<uint64_t> data(2000, 5);  // all duplicates: brackets overlap
  MemoryBlockDevice dev;
  ASSERT_TRUE(WriteDataset(data, &dev).ok());
  auto file = TypedDataFile<uint64_t>::Open(&dev);
  ASSERT_TRUE(file.ok());
  OpaqConfig config;
  config.run_size = 200;
  config.samples_per_run = 20;
  OpaqEstimator<uint64_t> est = EstimateQuantilesInMemory(data, config);
  auto estimates = est.EquiQuantiles(10);
  FileRunProvider<uint64_t> provider(&*file);
  auto exact = ExactQuantilesSecondPass(provider, estimates,
                                        config.read_options(),
                                        /*budget=*/100);
  EXPECT_FALSE(exact.ok());
  EXPECT_EQ(exact.status().code(), StatusCode::kResourceExhausted);
  auto ok = ExactQuantilesSecondPass(provider, estimates,
                                     config.read_options(),
                                     /*budget=*/9 * 2000);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  for (uint64_t v : *ok) EXPECT_EQ(v, 5u);
}

}  // namespace
}  // namespace opaq
