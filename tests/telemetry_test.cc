// Unit tests for src/telemetry: the metrics registry (concurrent updates,
// stable pointers, sorted snapshots), the sketch-backed latency histogram
// (its snapshot must be byte-identical to sketching the same stream with
// SampleListBuilder directly), the flight-recorder ring (wraparound, seqlock
// consistency under concurrent writers), and the two snapshot renderers.
//
// The concurrency cases double as the TSan wall: CI runs this suite under
// -fsanitize=thread, so any data race in the lock-free paths fails the job.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/sample_list.h"
#include "telemetry/metrics.h"
#include "telemetry/stats_format.h"
#include "telemetry/trace.h"

namespace opaq {
namespace {

// ------------------------------------------------------ Counter / Gauge ----

TEST(CounterTest, AddAndSet) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Set(7);
  EXPECT_EQ(c.value(), 7u);
}

TEST(GaugeTest, GoesBothWays) {
  Gauge g;
  g.Set(5);
  g.Add(-8);
  EXPECT_EQ(g.value(), -3);
}

// ----------------------------------------------------------- Registry ------

TEST(MetricsRegistryTest, ReturnsStablePointersAndDedupesByName) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x.count");
  Counter* b = registry.GetCounter("x.count");
  EXPECT_EQ(a, b);
  Gauge* g1 = registry.GetGauge("x.gauge");
  Gauge* g2 = registry.GetGauge("x.gauge");
  EXPECT_EQ(g1, g2);
  LatencyHistogram* h1 = registry.GetHistogram("x.hist");
  LatencyHistogram* h2 = registry.GetHistogram("x.hist");
  EXPECT_EQ(h1, h2);
}

TEST(MetricsRegistryTest, SnapshotIsSortedByName) {
  MetricsRegistry registry;
  registry.GetCounter("zeta")->Add(1);
  registry.GetCounter("alpha")->Add(2);
  registry.GetGauge("mid")->Set(-4);
  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.metrics.size(), 3u);
  EXPECT_EQ(snapshot.metrics[0].name, "alpha");
  EXPECT_EQ(snapshot.metrics[1].name, "mid");
  EXPECT_EQ(snapshot.metrics[2].name, "zeta");
  EXPECT_EQ(snapshot.metrics[0].value, 2u);
  EXPECT_EQ(snapshot.metrics[1].gauge_value(), -4);
  EXPECT_EQ(snapshot.metrics[2].value, 1u);
}

TEST(MetricsRegistryTest, ConcurrentRegistrationAndUpdates) {
  // Many threads race registration (same names), updates, and snapshots.
  // Correctness assertion: no increment is lost and no duplicate metric
  // appears. Under TSan this also proves the locking discipline.
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < kIters; ++i) {
        registry.GetCounter("shared.count")->Add();
        registry.GetGauge("shared.gauge")->Set(t);
        registry.GetHistogram("shared.hist")
            ->Record(static_cast<uint64_t>(i));
        if (i % 64 == 0) {
          MetricsSnapshot snap = registry.Snapshot();
          ASSERT_LE(snap.metrics.size(), 3u);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.metrics.size(), 3u);
  EXPECT_EQ(snapshot.metrics[0].name, "shared.count");
  EXPECT_EQ(snapshot.metrics[0].value,
            static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(snapshot.metrics[1].name, "shared.gauge");
  EXPECT_EQ(snapshot.metrics[2].name, "shared.hist");
  EXPECT_EQ(snapshot.metrics[2].histogram.count,
            static_cast<uint64_t>(kThreads) * kIters);
}

TEST(MetricsRegistryTest, EnableFlagRoundTrips) {
  MetricsRegistry registry;
  EXPECT_TRUE(registry.enabled());
  registry.set_enabled(false);
  EXPECT_FALSE(registry.enabled());
  registry.set_enabled(true);
  EXPECT_TRUE(registry.enabled());
}

// ---------------------------------------------------- LatencyHistogram -----

// The histogram must produce EXACTLY the sketch that SampleListBuilder
// produces over the same stream split into the same runs — same samples,
// same accounting. That is the tentpole claim: the system measures itself
// with the paper's own algorithm, not an approximation of it.
TEST(LatencyHistogramTest, SnapshotMatchesDirectSketch) {
  LatencyHistogram::Config config;
  config.run_size = 64;
  config.samples_per_run = 8;  // subrun_size = 8
  LatencyHistogram hist(config);

  std::mt19937_64 rng(42);
  std::vector<uint64_t> values(64 * 5 + 21);  // five full runs + partial
  for (uint64_t& v : values) v = rng() % 100000;
  for (uint64_t v : values) hist.Record(v);

  // Direct construction: split into the same runs, sort each, regular-
  // sample at the last element of each full sub-run.
  const uint64_t subrun = config.run_size / config.samples_per_run;
  SampleListBuilder<uint64_t> builder(subrun);
  for (size_t begin = 0; begin < values.size(); begin += config.run_size) {
    const size_t end = std::min(begin + config.run_size, values.size());
    std::vector<uint64_t> run(values.begin() + begin, values.begin() + end);
    std::sort(run.begin(), run.end());
    std::vector<uint64_t> samples;
    for (uint64_t j = subrun - 1; j < run.size(); j += subrun) {
      samples.push_back(run[j]);
    }
    builder.AddRunSamples(std::move(samples), run.size());
  }
  SampleList<uint64_t> direct = builder.Finalize();

  SampleList<uint64_t> sketched = hist.SnapshotList();
  EXPECT_EQ(sketched.samples(), direct.samples());
  EXPECT_EQ(sketched.accounting().subrun_size,
            direct.accounting().subrun_size);
  EXPECT_EQ(sketched.accounting().num_runs, direct.accounting().num_runs);
  EXPECT_EQ(sketched.accounting().num_samples,
            direct.accounting().num_samples);
  EXPECT_EQ(sketched.accounting().num_uncovered,
            direct.accounting().num_uncovered);
  EXPECT_EQ(sketched.total_elements(), values.size());

  // The flattened form carries the same samples plus the exact sum.
  HistogramSnapshot snapshot = hist.Snapshot();
  EXPECT_EQ(snapshot.samples, direct.samples());
  EXPECT_EQ(snapshot.count, values.size());
  EXPECT_EQ(snapshot.sum,
            std::accumulate(values.begin(), values.end(), uint64_t{0}));
  EXPECT_EQ(snapshot.subrun_size, subrun);
}

TEST(LatencyHistogramTest, SnapshotDoesNotConsumeLiveState) {
  LatencyHistogram::Config config;
  config.run_size = 16;
  config.samples_per_run = 4;
  LatencyHistogram hist(config);
  for (uint64_t v = 0; v < 23; ++v) hist.Record(v);
  HistogramSnapshot first = hist.Snapshot();
  HistogramSnapshot second = hist.Snapshot();
  EXPECT_EQ(first.samples, second.samples);
  EXPECT_EQ(first.count, second.count);
  EXPECT_EQ(first.sum, second.sum);
  // Recording continues cleanly after snapshots.
  for (uint64_t v = 0; v < 9; ++v) hist.Record(v);
  EXPECT_EQ(hist.count(), 32u);
}

TEST(LatencyHistogramTest, QuantileBracketsKnownStream) {
  LatencyHistogram::Config config;
  config.run_size = 100;
  config.samples_per_run = 20;  // subrun = 5
  LatencyHistogram hist(config);
  for (uint64_t v = 1; v <= 10000; ++v) hist.Record(v);
  QuantileEstimate<uint64_t> median = hist.Quantile(0.5);
  // Certified bracket: the true median (5000) lies within [lower, upper]
  // unless clamped, and the point samples sit near it.
  EXPECT_FALSE(median.lower_clamped);
  EXPECT_FALSE(median.upper_clamped);
  EXPECT_LE(median.lower, 5000u);
  EXPECT_GE(median.upper, 5000u);
  EXPECT_NEAR(static_cast<double>(hist.Snapshot().QuantilePoint(0.5)), 5000.0,
              100.0);
}

TEST(LatencyHistogramTest, EmptyQuantileIsZeroFilled) {
  LatencyHistogram hist;
  QuantileEstimate<uint64_t> q = hist.Quantile(0.9);
  EXPECT_EQ(q.lower, 0u);
  EXPECT_EQ(q.upper, 0u);
  EXPECT_EQ(hist.Snapshot().QuantilePoint(0.9), 0u);
}

// ------------------------------------------------------ FlightRecorder -----

TEST(FlightRecorderTest, RingWrapsAndKeepsMostRecent) {
  FlightRecorder recorder(/*capacity=*/8);
  EXPECT_EQ(recorder.capacity(), 8u);
  for (uint64_t i = 0; i < 20; ++i) {
    recorder.Record(TraceStage::kSample, /*start_ns=*/i * 100,
                    /*duration_ns=*/i);
  }
  EXPECT_EQ(recorder.recorded(), 20u);
  std::vector<TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 8u);
  // The ring retains exactly the last 8 spans, oldest first.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].duration_ns, 12 + i);
    EXPECT_EQ(events[i].start_ns, (12 + i) * 100);
    EXPECT_EQ(events[i].stage, TraceStage::kSample);
  }
  EXPECT_EQ(recorder.StageCount(TraceStage::kSample), 20u);
  EXPECT_EQ(recorder.StageTotalNs(TraceStage::kSample),
            (0u + 19u) * 20u / 2u);
}

TEST(FlightRecorderTest, CapacityRoundsUpToPowerOfTwo) {
  FlightRecorder recorder(/*capacity=*/5);
  EXPECT_EQ(recorder.capacity(), 8u);
}

TEST(FlightRecorderTest, DisabledSpanRecordsNothing) {
  FlightRecorder recorder(8);
  recorder.set_enabled(false);
  { TraceSpan span(TraceStage::kMerge, &recorder); }
  EXPECT_EQ(recorder.recorded(), 0u);
  recorder.set_enabled(true);
  { TraceSpan span(TraceStage::kMerge, &recorder); }
  EXPECT_EQ(recorder.recorded(), 1u);
  EXPECT_EQ(recorder.StageCount(TraceStage::kMerge), 1u);
}

TEST(FlightRecorderTest, ConcurrentWritersAndReadersAreConsistent) {
  // Writers hammer the ring while readers snapshot it. The seqlock must
  // never yield a torn event: every event a reader sees must be one some
  // writer actually recorded (stage/duration pairing intact).
  FlightRecorder recorder(/*capacity=*/64);
  constexpr int kWriters = 4;
  constexpr int kSpansPerWriter = 5000;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn{0};
  std::thread reader([&recorder, &stop, &torn] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const TraceEvent& e : recorder.Events()) {
        // Writers encode duration = stage_index * 1000 + k; a torn read
        // would break that correspondence.
        const auto stage_index = static_cast<uint64_t>(e.stage);
        if (e.duration_ns / 1000 != stage_index) {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&recorder, w] {
      const auto stage = static_cast<TraceStage>(w % kNumTraceStages);
      const uint64_t stage_index = static_cast<uint64_t>(stage);
      for (int i = 0; i < kSpansPerWriter; ++i) {
        recorder.Record(stage, /*start_ns=*/i,
                        /*duration_ns=*/stage_index * 1000 +
                            static_cast<uint64_t>(i % 1000));
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(recorder.recorded(),
            static_cast<uint64_t>(kWriters) * kSpansPerWriter);
}

TEST(FlightRecorderTest, ChromeTraceJsonIsWellFormed) {
  FlightRecorder recorder(8);
  recorder.Record(TraceStage::kRunRead, 1000, 500);
  recorder.Record(TraceStage::kExactPass, 2000, 250);
  const std::string json = recorder.ChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"run_read\""), std::string::npos);
  EXPECT_NE(json.find("\"exact_pass\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(TraceStageTest, EveryStageHasAName) {
  for (size_t i = 0; i < kNumTraceStages; ++i) {
    const char* name = TraceStageName(static_cast<TraceStage>(i));
    ASSERT_NE(name, nullptr);
    EXPECT_STRNE(name, "unknown") << "stage " << i;
  }
}

// ------------------------------------------------------------ Renderers ----

MetricsSnapshot RenderFixture() {
  MetricsRegistry registry;
  registry.GetCounter("net.frames_served")->Add(12);
  registry.GetGauge("query.sessions")->Set(-2);
  LatencyHistogram::Config config;
  config.run_size = 8;
  config.samples_per_run = 4;
  LatencyHistogram* hist =
      registry.GetHistogram("query.batch_latency_us", config);
  for (uint64_t v = 1; v <= 24; ++v) hist->Record(v * 10);
  return registry.Snapshot();
}

TEST(StatsFormatTest, TextHasOneRowPerMetric) {
  const std::string text = FormatStatsText(RenderFixture());
  EXPECT_NE(text.find("net.frames_served"), std::string::npos);
  EXPECT_NE(text.find("12"), std::string::npos);
  EXPECT_NE(text.find("query.sessions"), std::string::npos);
  EXPECT_NE(text.find("-2"), std::string::npos);
  EXPECT_NE(text.find("query.batch_latency_us"), std::string::npos);
  EXPECT_NE(text.find("p50="), std::string::npos);
  EXPECT_NE(text.find("p99="), std::string::npos);
}

TEST(StatsFormatTest, PrometheusExpositionParses) {
  const std::string prom = FormatStatsPrometheus(RenderFixture());
  // Names sanitized and prefixed; TYPE lines present; histogram rendered
  // as a summary with quantile labels plus _sum/_count.
  EXPECT_NE(prom.find("# TYPE opaq_net_frames_served counter"),
            std::string::npos);
  EXPECT_NE(prom.find("opaq_net_frames_served 12"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE opaq_query_sessions gauge"),
            std::string::npos);
  EXPECT_NE(prom.find("opaq_query_sessions -2"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE opaq_query_batch_latency_us summary"),
            std::string::npos);
  EXPECT_NE(prom.find("opaq_query_batch_latency_us{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("opaq_query_batch_latency_us_sum"), std::string::npos);
  EXPECT_NE(prom.find("opaq_query_batch_latency_us_count 24"),
            std::string::npos);
  // Every non-comment line is "name[{labels}] value".
  size_t pos = 0;
  while (pos < prom.size()) {
    size_t end = prom.find('\n', pos);
    if (end == std::string::npos) end = prom.size();
    const std::string line = prom.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty() || line[0] == '#') continue;
    EXPECT_NE(line.find(' '), std::string::npos) << line;
    EXPECT_EQ(line.rfind("opaq_", 0), 0u) << line;
  }
}

}  // namespace
}  // namespace opaq
