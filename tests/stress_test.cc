// Randomized stress & property tests across module boundaries: randomized
// configurations against ground truth, algebraic properties of sample-list
// merging, estimator monotonicity, adversarial input orders for the
// streaming baselines, and a message-storm test for the cluster.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>

#include "baselines/gk.h"
#include "baselines/munro_paterson.h"
#include "core/opaq.h"
#include "data/dataset.h"
#include "io/throttled_device.h"
#include "metrics/ground_truth.h"
#include "metrics/rer.h"
#include "parallel/cluster.h"

namespace opaq {
namespace {

// ------------------------------------------- randomized config sweeps ----

TEST(StressTest, RandomConfigurationsAlwaysBracket) {
  // 60 random (n, m, s, distribution) draws; every dectile bracket must
  // hold and every rank estimate must contain the true rank.
  Xoshiro256 rng(2024);
  const Distribution kDists[] = {
      Distribution::kUniform, Distribution::kZipf, Distribution::kNormal,
      Distribution::kSequential, Distribution::kReverseSequential,
      Distribution::kSawtooth, Distribution::kConstant};
  for (int trial = 0; trial < 60; ++trial) {
    // Random c in [1, 64], random samples-per-run in [2, 64], random run
    // count in [1, 20], random tail.
    const uint64_t c = 1 + rng.NextBounded(64);
    const uint64_t s = 2 + rng.NextBounded(63);
    const uint64_t m = c * s;
    const uint64_t runs = 1 + rng.NextBounded(20);
    const uint64_t tail = rng.NextBounded(m);
    const uint64_t n = m * runs + tail;

    DatasetSpec spec;
    spec.n = n;
    spec.distribution = kDists[rng.NextBounded(std::size(kDists))];
    spec.seed = rng.Next();
    auto data = GenerateDataset<uint64_t>(spec);

    OpaqConfig config;
    config.run_size = m;
    config.samples_per_run = s;
    config.seed = trial;
    OpaqEstimator<uint64_t> est = EstimateQuantilesInMemory(data, config);
    GroundTruth<uint64_t> truth(data);

    for (int d = 1; d <= 9; ++d) {
      ASSERT_TRUE(BracketHolds(truth, est.Quantile(d / 10.0)))
          << "trial " << trial << " " << spec.ToString() << " m=" << m
          << " s=" << s << " dectile " << d;
    }
    for (int probe = 0; probe < 10; ++probe) {
      uint64_t v = data[rng.NextBounded(data.size())];
      RankEstimate r = est.EstimateRank(v);
      ASSERT_LE(r.min_rank_le, truth.RankLe(v)) << "trial " << trial;
      ASSERT_GE(r.max_rank_le, truth.RankLe(v)) << "trial " << trial;
      ASSERT_LE(r.min_rank_lt, truth.RankLt(v)) << "trial " << trial;
      ASSERT_GE(r.max_rank_lt, truth.RankLt(v)) << "trial " << trial;
    }
  }
}

TEST(StressTest, VariableLengthRunFeeding) {
  // Feeding the sketch runs of varying length <= m (as a tailed stream
  // would) keeps all guarantees, with uncovered accounting picking up the
  // slack.
  Xoshiro256 rng(77);
  DatasetSpec spec;
  spec.n = 50000;
  spec.distribution = Distribution::kZipf;
  auto data = GenerateDataset<uint64_t>(spec);

  OpaqConfig config;
  config.run_size = 4096;
  config.samples_per_run = 64;
  OpaqSketch<uint64_t> sketch(config);
  size_t cursor = 0;
  while (cursor < data.size()) {
    size_t len = std::min<size_t>(1 + rng.NextBounded(config.run_size),
                                  data.size() - cursor);
    sketch.AddRun(std::vector<uint64_t>(data.begin() + cursor,
                                        data.begin() + cursor + len));
    cursor += len;
  }
  OpaqEstimator<uint64_t> est = sketch.Finalize();
  ASSERT_EQ(est.total_elements(), data.size());
  GroundTruth<uint64_t> truth(data);
  for (int d = 1; d <= 9; ++d) {
    EXPECT_TRUE(BracketHolds(truth, est.Quantile(d / 10.0))) << d;
  }
}

// -------------------------------------------------- algebraic properties --

TEST(StressTest, MergeIsOrderInsensitive) {
  // Merging sample lists in any order yields the same sample multiset and
  // the same accounting (commutativity + associativity of Merge).
  OpaqConfig config;
  config.run_size = 1000;
  config.samples_per_run = 50;
  std::vector<SampleList<uint64_t>> parts;
  for (int i = 0; i < 5; ++i) {
    DatasetSpec spec;
    spec.n = 5000 + i * 1000;
    spec.seed = i;
    spec.distribution = i % 2 ? Distribution::kZipf : Distribution::kUniform;
    parts.push_back(EstimateQuantilesInMemory(
                        GenerateDataset<uint64_t>(spec), config)
                        .sample_list());
  }
  auto merge_in_order = [&](std::vector<int> order) {
    SampleList<uint64_t> acc;
    for (int i : order) {
      auto merged = SampleList<uint64_t>::Merge(acc, parts[i]);
      OPAQ_CHECK_OK(merged.status());
      acc = std::move(merged).value();
    }
    return acc;
  };
  SampleList<uint64_t> forward = merge_in_order({0, 1, 2, 3, 4});
  SampleList<uint64_t> backward = merge_in_order({4, 3, 2, 1, 0});
  SampleList<uint64_t> shuffled = merge_in_order({2, 0, 4, 1, 3});
  EXPECT_EQ(forward.samples(), backward.samples());
  EXPECT_EQ(forward.samples(), shuffled.samples());
  EXPECT_EQ(forward.accounting().num_runs, backward.accounting().num_runs);
  EXPECT_EQ(forward.total_elements(), shuffled.total_elements());
}

TEST(StressTest, QuantileBoundsAreMonotoneInPhi) {
  DatasetSpec spec;
  spec.n = 40000;
  spec.distribution = Distribution::kNormal;
  auto data = GenerateDataset<uint64_t>(spec);
  OpaqConfig config;
  config.run_size = 2000;
  config.samples_per_run = 100;
  OpaqEstimator<uint64_t> est = EstimateQuantilesInMemory(data, config);
  uint64_t prev_lower = 0, prev_upper = 0;
  for (int pct = 1; pct <= 100; ++pct) {
    auto e = est.Quantile(pct / 100.0);
    EXPECT_GE(e.lower, prev_lower) << pct;
    EXPECT_GE(e.upper, prev_upper) << pct;
    EXPECT_LE(e.lower, e.upper) << pct;
    prev_lower = e.lower;
    prev_upper = e.upper;
  }
}

TEST(StressTest, EquiQuantilesMatchesIndividualCalls) {
  DatasetSpec spec;
  spec.n = 20000;
  auto data = GenerateDataset<uint64_t>(spec);
  OpaqConfig config;
  config.run_size = 2000;
  config.samples_per_run = 200;
  OpaqEstimator<uint64_t> est = EstimateQuantilesInMemory(data, config);
  for (int q : {2, 4, 10, 100}) {
    auto batch = est.EquiQuantiles(q);
    ASSERT_EQ(batch.size(), static_cast<size_t>(q - 1));
    for (int i = 1; i < q; ++i) {
      auto single = est.Quantile(static_cast<double>(i) / q);
      EXPECT_EQ(batch[i - 1].lower, single.lower);
      EXPECT_EQ(batch[i - 1].upper, single.upper);
      EXPECT_EQ(batch[i - 1].target_rank, single.target_rank);
    }
  }
}

// ------------------------------------- adversarial orders for baselines --

TEST(StressTest, GkSoundOnAdversarialOrders) {
  const double eps = 0.02;
  for (Distribution d : {Distribution::kSequential,
                         Distribution::kReverseSequential,
                         Distribution::kSawtooth, Distribution::kConstant}) {
    DatasetSpec spec;
    spec.n = 30000;
    spec.distribution = d;
    auto data = GenerateDataset<uint64_t>(spec);
    GkEstimator<uint64_t> gk(eps);
    for (uint64_t v : data) gk.Add(v);
    GroundTruth<uint64_t> truth(data);
    for (int dectile = 1; dectile <= 9; ++dectile) {
      auto est = gk.EstimateQuantile(dectile / 10.0);
      ASSERT_TRUE(est.ok());
      EXPECT_LE(PointRerA(truth, *est, truth.TargetRank(dectile / 10.0)),
                eps * 100 + 0.01)
          << DistributionName(d) << " dectile " << dectile;
    }
  }
}

TEST(StressTest, MunroPatersonBoundedErrorOnAdversarialOrders) {
  for (Distribution d : {Distribution::kSequential,
                         Distribution::kReverseSequential,
                         Distribution::kSawtooth}) {
    DatasetSpec spec;
    spec.n = 50000;
    spec.distribution = d;
    auto data = GenerateDataset<uint64_t>(spec);
    MunroPatersonEstimator<uint64_t> mp(2048);
    for (uint64_t v : data) mp.Add(v);
    GroundTruth<uint64_t> truth(data);
    auto est = mp.EstimateQuantile(0.5);
    ASSERT_TRUE(est.ok());
    EXPECT_LE(PointRerA(truth, *est, truth.TargetRank(0.5)), 5.0)
        << DistributionName(d);
  }
}

// ----------------------------------------------- disk-scale async sweep --

// 64M-element async ConsumeFile through a ThrottledDevice with a randomized
// prefetch depth: the Lemma 1-3 certificate invariants checked by
// certificate_property_test must survive the prefetching pipeline at real
// disk-resident scale. Sequential keys 1..n make ground truth free (the
// value at rank k is exactly k), so certified brackets are verifiable
// without sorting half a gigabyte. Registered under the `stress` ctest
// label only (see CMakeLists.txt) — it moves ~1 GB through the pipeline.
TEST(StressTest, HeavyAsync64MThrottledCertificates) {
  const uint64_t n = 64ull << 20;  // 64M keys, 512 MiB on "disk"
  ThrottledDevice device(std::make_unique<MemoryBlockDevice>(), DiskModel(),
                         ThrottledDevice::Mode::kAccount);
  auto file = TypedDataFile<uint64_t>::Create(&device, 0);
  ASSERT_TRUE(file.ok());
  {
    // Stream the dataset to the device in bounded chunks; values are the
    // ranks 1..n so every certificate is checkable in O(1).
    const uint64_t kChunk = 1 << 20;
    std::vector<uint64_t> chunk(kChunk);
    for (uint64_t first = 0; first < n; first += kChunk) {
      std::iota(chunk.begin(), chunk.end(), first + 1);
      ASSERT_TRUE(file->Append(chunk).ok());
    }
  }
  ASSERT_EQ(file->size(), n);

  Xoshiro256 rng(64);
  OpaqConfig config;
  config.run_size = 1 << 20;
  config.samples_per_run = 1024;
  config.io_mode = IoMode::kAsync;
  config.prefetch_depth = 1 + rng.NextBounded(8);
  OpaqSketch<uint64_t> sketch(config);
  ASSERT_TRUE(sketch.Consume(FileRunProvider<uint64_t>(&*file)).ok());
  EXPECT_EQ(sketch.elements_consumed(), n);
  EXPECT_EQ(sketch.runs_consumed(), 64u);
  EXPECT_GT(device.modeled_seconds(), 0.0);

  OpaqEstimator<uint64_t> est = sketch.Finalize();
  ASSERT_EQ(est.total_elements(), n);

  // Lemma 3 budget: the exact c + (R-1)(c-1) + U accounting identity, and
  // (n divisible by m) the paper's n/s bound.
  const SampleAccounting& acc = est.sample_list().accounting();
  EXPECT_EQ(acc.num_uncovered, 0u);
  EXPECT_EQ(est.max_rank_error(),
            acc.subrun_size + (acc.num_runs - 1) * (acc.subrun_size - 1) +
                acc.num_uncovered);
  EXPECT_LE(est.max_rank_error(), n / config.samples_per_run);

  // Certified brackets against the free ground truth, plus monotonicity.
  uint64_t prev_lower = 0, prev_upper = 0;
  for (double phi : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    QuantileEstimate<uint64_t> q = est.Quantile(phi);
    const uint64_t true_value = q.target_rank;  // value at rank k is k
    if (!q.lower_clamped) {
      EXPECT_LE(q.lower, true_value) << "phi=" << phi;
      EXPECT_GE(q.lower + est.max_rank_error(), true_value) << "phi=" << phi;
    }
    if (!q.upper_clamped) {
      EXPECT_GE(q.upper, true_value) << "phi=" << phi;
      EXPECT_LE(q.upper, true_value + est.max_rank_error()) << "phi=" << phi;
    }
    EXPECT_LE(q.lower, q.upper) << "phi=" << phi;
    EXPECT_GE(q.lower, prev_lower) << "phi=" << phi;
    EXPECT_GE(q.upper, prev_upper) << "phi=" << phi;
    prev_lower = q.lower;
    prev_upper = q.upper;
  }
}

// --------------------------------------------------- cluster under load --

TEST(StressTest, MessageStormAcrossManyProcessors) {
  // Every rank sends 200 tagged messages to every other rank, interleaved;
  // all must arrive, matched by (source, tag), in per-pair order.
  const int p = 8;
  const int kMessages = 200;
  Cluster::Options options;
  options.num_processors = p;
  Cluster cluster(options);
  Status s = cluster.Run([&](ProcessorContext& ctx) -> Status {
    for (int i = 0; i < kMessages; ++i) {
      for (int to = 0; to < p; ++to) {
        if (to == ctx.rank()) continue;
        uint64_t payload = static_cast<uint64_t>(ctx.rank()) * 1000000 +
                           static_cast<uint64_t>(i);
        OPAQ_RETURN_IF_ERROR(ctx.SendValue(to, /*tag=*/i % 3, payload));
      }
    }
    // Drain: expect kMessages from each peer split across 3 tags, each
    // tag's stream in increasing i order.
    for (int from = 0; from < p; ++from) {
      if (from == ctx.rank()) continue;
      int next_for_tag[3] = {0, 1, 2};
      for (int i = 0; i < kMessages; ++i) {
        int tag = i % 3;  // deterministic receive schedule
        uint64_t got = ctx.RecvValue<uint64_t>(from, tag);
        uint64_t expect = static_cast<uint64_t>(from) * 1000000 +
                          static_cast<uint64_t>(next_for_tag[tag]);
        if (got != expect) {
          return Status::Internal("out-of-order message");
        }
        next_for_tag[tag] += 3;
      }
    }
    return Status::OK();
  });
  EXPECT_TRUE(s.ok()) << s.ToString();
  // Conservation: every byte sent was received.
  uint64_t sent = 0, received = 0;
  for (int r = 0; r < p; ++r) {
    sent += cluster.comm_stats(r).messages_sent.load();
    received += cluster.comm_stats(r).messages_received.load();
  }
  EXPECT_EQ(sent, static_cast<uint64_t>(p) * (p - 1) * kMessages);
  EXPECT_EQ(sent, received);
}

}  // namespace
}  // namespace opaq
