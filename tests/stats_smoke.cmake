# Smoke test for stats-over-the-wire: start a real opaq_queryd on an
# ephemeral port, poll it with `opaq_cli stats` (wire v6 STATS/STATS_DATA),
# and assert both renderings — the text rows and a well-formed Prometheus
# exposition. Exercises the full path: registry -> snapshot -> v6 encode ->
# TCP -> decode -> render.
#
# Driven by ctest:
#   cmake -DOPAQ_CLI=... -DOPAQ_QUERYD=... -DWORK_DIR=... -P stats_smoke.cmake

if(NOT DEFINED OPAQ_CLI OR NOT DEFINED OPAQ_QUERYD OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR
          "stats_smoke.cmake needs -DOPAQ_CLI/-DOPAQ_QUERYD/-DWORK_DIR")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(DATA "${WORK_DIR}/data.opaq")
set(LOG "${WORK_DIR}/queryd.log")
set(PIDFILE "${WORK_DIR}/queryd.pid")

# Kills the daemon (if it is still up) before failing, so a broken run
# never leaks a background process into the ctest harness.
function(die msg)
  if(EXISTS "${PIDFILE}")
    file(READ "${PIDFILE}" pid)
    string(STRIP "${pid}" pid)
    execute_process(COMMAND kill -TERM ${pid} ERROR_QUIET)
  endif()
  set(log_tail "")
  if(EXISTS "${LOG}")
    file(READ "${LOG}" log_tail)
  endif()
  message(FATAL_ERROR "${msg}\n--- queryd log ---\n${log_tail}")
endfunction()

execute_process(
  COMMAND "${OPAQ_CLI}" generate --out=${DATA} --n=20000 --dist=sequential
          --seed=3
  RESULT_VARIABLE gen_code
  OUTPUT_VARIABLE gen_out
  ERROR_VARIABLE gen_err
)
if(NOT gen_code EQUAL 0)
  message(FATAL_ERROR "generate failed:\n${gen_out}\n${gen_err}")
endif()

# Start the daemon in the background on an ephemeral port; --duration caps
# its lifetime so a wedged test cannot leave it running forever.
execute_process(
  COMMAND sh -c "'${OPAQ_QUERYD}' --serve=smoke='${DATA}' --port=0 \
                 --run-size=2000 --samples=200 --duration=120 \
                 > '${LOG}' 2>&1 & echo $! > '${PIDFILE}'"
  RESULT_VARIABLE spawn_code
)
if(NOT spawn_code EQUAL 0)
  message(FATAL_ERROR "failed to spawn opaq_queryd (${spawn_code})")
endif()

# Wait for the "serving on HOST:PORT" line and parse the bound port.
set(PORT "")
foreach(attempt RANGE 100)
  if(EXISTS "${LOG}")
    file(READ "${LOG}" log_text)
    if(log_text MATCHES "serving on ([0-9.]+):([0-9]+)")
      set(HOST ${CMAKE_MATCH_1})
      set(PORT ${CMAKE_MATCH_2})
      break()
    endif()
    if(log_text MATCHES "error:")
      die("opaq_queryd failed to start")
    endif()
  endif()
  execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
endforeach()
if(PORT STREQUAL "")
  die("opaq_queryd never reported its address")
endif()

# Poll `opaq_cli stats` until the daemon answers (the listener is up once
# the address prints, so the first attempt should already succeed).
set(TEXT_OUT "")
foreach(attempt RANGE 50)
  execute_process(
    COMMAND "${OPAQ_CLI}" stats ${HOST}:${PORT}
    RESULT_VARIABLE stats_code
    OUTPUT_VARIABLE stats_out
    ERROR_VARIABLE stats_err
  )
  if(stats_code EQUAL 0)
    set(TEXT_OUT "${stats_out}")
    break()
  endif()
  execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
endforeach()
if(TEXT_OUT STREQUAL "")
  die("opaq_cli stats never succeeded against ${HOST}:${PORT}")
endif()

# The text rendering must carry the server-side vocabulary: the net.*
# counters every daemon publishes and the query server's own metrics.
foreach(row net.connections_accepted net.requests_served query.exact_passes
        query.sessions engine.builds)
  if(NOT TEXT_OUT MATCHES "${row}")
    die("stats text output lacks '${row}':\n${TEXT_OUT}")
  endif()
endforeach()
# One session is being served.
if(NOT TEXT_OUT MATCHES "query\\.sessions +1\n")
  die("stats text output does not report 1 session:\n${TEXT_OUT}")
endif()

# The Prometheus rendering must be a well-formed exposition: TYPE lines,
# sanitized opaq_-prefixed names, and the batch-latency summary shape.
execute_process(
  COMMAND "${OPAQ_CLI}" stats ${HOST}:${PORT} --format=prometheus
  RESULT_VARIABLE prom_code
  OUTPUT_VARIABLE PROM_OUT
  ERROR_VARIABLE prom_err
)
if(NOT prom_code EQUAL 0)
  die("opaq_cli stats --format=prometheus exited ${prom_code}:\n${prom_err}")
endif()
foreach(needle
        "# TYPE opaq_net_connections_accepted counter"
        "# TYPE opaq_query_sessions gauge"
        "opaq_query_sessions 1\n"
        "opaq_net_requests_served ")
  if(NOT PROM_OUT MATCHES "${needle}")
    die("prometheus output lacks '${needle}':\n${PROM_OUT}")
  endif()
endforeach()
# Every non-comment line is "opaq_name[{labels}] value".
string(REPLACE "\n" ";" prom_lines "${PROM_OUT}")
foreach(line IN LISTS prom_lines)
  if(line STREQUAL "" OR line MATCHES "^#")
    continue()
  endif()
  if(NOT line MATCHES "^opaq_[a-zA-Z0-9_:]+([{][^}]*[}])? -?[0-9]+$")
    die("malformed prometheus line: '${line}'")
  endif()
endforeach()

# Clean shutdown: SIGTERM the daemon and confirm the unified final dump.
file(READ "${PIDFILE}" pid)
string(STRIP "${pid}" pid)
execute_process(COMMAND kill -TERM ${pid} RESULT_VARIABLE kill_code)
if(NOT kill_code EQUAL 0)
  die("failed to SIGTERM queryd pid ${pid}")
endif()
set(final_ok FALSE)
foreach(attempt RANGE 100)
  file(READ "${LOG}" log_text)
  if(log_text MATCHES "shutdown: signal received; final stats:")
    set(final_ok TRUE)
    break()
  endif()
  execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
endforeach()
if(NOT final_ok)
  die("queryd never printed the final stats dump after SIGTERM")
endif()

message(STATUS "stats smoke ok: wire-v6 snapshot served on ${HOST}:${PORT}")
