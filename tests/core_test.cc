// Unit + property tests for src/core: k-way merge, sample lists, the
// estimator (Lemma 1-3 guarantees swept over configurations via TEST_P),
// incremental merging, the exact second pass, and config validation.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <tuple>

#include "core/exact.h"
#include "core/kway_merge.h"
#include "core/opaq.h"
#include "data/dataset.h"
#include "io/block_device.h"
#include "metrics/ground_truth.h"
#include "metrics/rer.h"

namespace opaq {
namespace {

// ------------------------------------------------------------- KWayMerge --

TEST(KWayMergeTest, MergesManySortedLists) {
  std::vector<std::vector<int>> lists{{1, 4, 7}, {2, 5, 8}, {3, 6, 9}, {}};
  auto merged = KWayMergeSorted(lists);
  EXPECT_EQ(merged, (std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(KWayMergeTest, SingleList) {
  std::vector<std::vector<int>> lists{{1, 2, 3}};
  EXPECT_EQ(KWayMergeSorted(lists), (std::vector<int>{1, 2, 3}));
}

TEST(KWayMergeTest, AllEmpty) {
  std::vector<std::vector<int>> lists{{}, {}};
  EXPECT_TRUE(KWayMergeSorted(lists).empty());
}

TEST(KWayMergeTest, DuplicateHeavyLists) {
  std::vector<std::vector<int>> lists{{1, 1, 1}, {1, 1}, {0, 1, 2}};
  EXPECT_EQ(KWayMergeSorted(lists),
            (std::vector<int>{0, 1, 1, 1, 1, 1, 1, 2}));
}

TEST(KWayMergeTest, MatchesStdSortOnRandomLists) {
  Xoshiro256 rng(3);
  std::vector<std::vector<uint64_t>> lists(17);
  std::vector<uint64_t> all;
  for (auto& list : lists) {
    size_t len = rng.NextBounded(50);
    for (size_t i = 0; i < len; ++i) list.push_back(rng.NextBounded(1000));
    std::sort(list.begin(), list.end());
    all.insert(all.end(), list.begin(), list.end());
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(KWayMergeSorted(lists), all);
}

TEST(MergeSortedTest, TwoWayMerge) {
  EXPECT_EQ(MergeSorted<int>({1, 3, 5}, {2, 4}),
            (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_EQ(MergeSorted<int>({}, {1}), (std::vector<int>{1}));
  EXPECT_EQ(MergeSorted<int>({2, 2}, {2}), (std::vector<int>{2, 2, 2}));
}

// ------------------------------------------------------------ SampleList --

TEST(SampleListBuilderTest, AccountsRunsAndUncovered) {
  SampleListBuilder<uint64_t> builder(10);
  builder.AddRunSamples({5, 15, 25, 35}, 40);   // full run, 4 samples
  builder.AddRunSamples({7, 17}, 23);            // tail run: 2 samples, 3 uncovered
  EXPECT_EQ(builder.num_runs(), 2u);
  EXPECT_EQ(builder.total_elements(), 63u);
  SampleList<uint64_t> list = builder.Finalize();
  EXPECT_EQ(list.accounting().num_samples, 6u);
  EXPECT_EQ(list.accounting().num_uncovered, 3u);
  EXPECT_EQ(list.samples(), (std::vector<uint64_t>{5, 7, 15, 17, 25, 35}));
  EXPECT_TRUE(list.accounting().Valid());
}

TEST(SampleListBuilderTest, FinalizeResetsBuilder) {
  SampleListBuilder<uint64_t> builder(5);
  builder.AddRunSamples({1, 2}, 10);
  builder.Finalize();
  EXPECT_EQ(builder.num_runs(), 0u);
  builder.AddRunSamples({3, 4}, 10);
  SampleList<uint64_t> list = builder.Finalize();
  EXPECT_EQ(list.accounting().num_runs, 1u);
}

TEST(SampleListTest, At1UsesPaperIndexing) {
  SampleListBuilder<uint64_t> builder(1);
  builder.AddRunSamples({10, 20, 30}, 3);
  SampleList<uint64_t> list = builder.Finalize();
  EXPECT_EQ(list.At1(1), 10u);
  EXPECT_EQ(list.At1(3), 30u);
}

TEST(SampleListTest, CountingQueries) {
  SampleListBuilder<uint64_t> builder(1);
  builder.AddRunSamples({10, 20, 20, 30}, 4);
  SampleList<uint64_t> list = builder.Finalize();
  EXPECT_EQ(list.CountLess(20), 1u);
  EXPECT_EQ(list.CountLessEqual(20), 3u);
  EXPECT_EQ(list.CountLess(5), 0u);
  EXPECT_EQ(list.CountLessEqual(99), 4u);
}

TEST(SampleListTest, MergeCombinesAccounting) {
  SampleListBuilder<uint64_t> b1(10), b2(10);
  b1.AddRunSamples({5, 15}, 20);
  b2.AddRunSamples({10, 20}, 20);
  b2.AddRunSamples({1, 2}, 23);  // 3 uncovered
  auto merged = SampleList<uint64_t>::Merge(b1.Finalize(), b2.Finalize());
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->accounting().num_runs, 3u);
  EXPECT_EQ(merged->accounting().num_samples, 6u);
  EXPECT_EQ(merged->accounting().num_uncovered, 3u);
  EXPECT_EQ(merged->accounting().total_elements, 63u);
  EXPECT_TRUE(std::is_sorted(merged->samples().begin(),
                             merged->samples().end()));
}

TEST(SampleListTest, MergeRejectsDifferentSubrunSizes) {
  SampleListBuilder<uint64_t> b1(10), b2(20);
  b1.AddRunSamples({5}, 10);
  b2.AddRunSamples({5}, 20);
  auto merged = SampleList<uint64_t>::Merge(b1.Finalize(), b2.Finalize());
  EXPECT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(), StatusCode::kInvalidArgument);
}

TEST(SampleListTest, MergeWithEmptyIsIdentity) {
  SampleListBuilder<uint64_t> b(10);
  b.AddRunSamples({5, 15}, 20);
  SampleList<uint64_t> list = b.Finalize();
  auto merged = SampleList<uint64_t>::Merge(list, SampleList<uint64_t>());
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->samples(), list.samples());
}

// ---------------------------------------------------------------- Config --

TEST(OpaqConfigTest, ValidatesDivisibility) {
  OpaqConfig config;
  config.run_size = 100;
  config.samples_per_run = 10;
  EXPECT_TRUE(config.Validate().ok());
  config.samples_per_run = 7;  // does not divide 100
  EXPECT_FALSE(config.Validate().ok());
  config.samples_per_run = 0;
  EXPECT_FALSE(config.Validate().ok());
  config.samples_per_run = 200;  // > run_size
  EXPECT_FALSE(config.Validate().ok());
  config.run_size = 0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(OpaqConfigTest, MemoryConstraintOfSection23) {
  OpaqConfig config;
  config.run_size = 100;
  config.samples_per_run = 10;
  // n=1000 => r=10 runs => r*s + m = 100 + 100 = 200 elements needed.
  EXPECT_TRUE(config.Validate(1000, 200).ok());
  EXPECT_FALSE(config.Validate(1000, 199).ok());
  // Budget 0 means "don't check".
  EXPECT_TRUE(config.Validate(1000, 0).ok());
}

TEST(OpaqConfigTest, ToStringMentionsParameters) {
  OpaqConfig config;
  config.run_size = 64;
  config.samples_per_run = 8;
  std::string s = config.ToString();
  EXPECT_NE(s.find("m=64"), std::string::npos);
  EXPECT_NE(s.find("s=8"), std::string::npos);
  EXPECT_NE(s.find("c=8"), std::string::npos);
}

// ----------------------------------------------- Estimator on known data --

TEST(EstimatorTest, SingleRunExactMachinery) {
  // 100 elements 0..99 in one run with c=10: samples are 9,19,...,99.
  OpaqConfig config;
  config.run_size = 100;
  config.samples_per_run = 10;
  std::vector<uint64_t> data(100);
  std::iota(data.begin(), data.end(), 0);
  OpaqEstimator<uint64_t> est = EstimateQuantilesInMemory(data, config);
  EXPECT_EQ(est.total_elements(), 100u);

  auto median = est.Quantile(0.5);  // psi = 50
  EXPECT_EQ(median.target_rank, 50u);
  EXPECT_EQ(median.lower, 49u);   // sample index floor(50/10)=5 => value 49
  EXPECT_EQ(median.upper, 49u);   // ceil(50/10)=5 => value 49
  EXPECT_FALSE(median.lower_clamped);
  EXPECT_FALSE(median.upper_clamped);
  EXPECT_EQ(median.max_rank_error, 10u);  // c + 0 slack
}

TEST(EstimatorTest, QuantileByRankEdges) {
  OpaqConfig config;
  config.run_size = 100;
  config.samples_per_run = 10;
  std::vector<uint64_t> data(100);
  std::iota(data.begin(), data.end(), 0);
  OpaqEstimator<uint64_t> est = EstimateQuantilesInMemory(data, config);

  auto first = est.QuantileByRank(1);
  EXPECT_TRUE(first.lower_clamped);  // no certified lower bound at rank 1
  EXPECT_EQ(first.upper, 9u);        // ceil(1/10) = 1 => first sample

  auto last = est.QuantileByRank(100);
  EXPECT_EQ(last.upper, 99u);
  EXPECT_EQ(last.lower, 99u);
  EXPECT_FALSE(last.upper_clamped);
}

TEST(EstimatorTest, EquiQuantilesCountAndOrder) {
  OpaqConfig config;
  config.run_size = 1000;
  config.samples_per_run = 100;
  std::vector<uint64_t> data(10000);
  std::iota(data.begin(), data.end(), 0);
  OpaqEstimator<uint64_t> est = EstimateQuantilesInMemory(data, config);
  auto dectiles = est.EquiQuantiles(10);
  ASSERT_EQ(dectiles.size(), 9u);
  for (size_t i = 1; i < dectiles.size(); ++i) {
    EXPECT_LE(dectiles[i - 1].lower, dectiles[i].lower);
    EXPECT_LE(dectiles[i - 1].upper, dectiles[i].upper);
  }
}

TEST(EstimatorTest, RankEstimateBracketsTrueRank) {
  OpaqConfig config;
  config.run_size = 500;
  config.samples_per_run = 50;
  DatasetSpec spec;
  spec.n = 5000;
  spec.distribution = Distribution::kUniform;
  auto data = GenerateDataset<uint64_t>(spec);
  OpaqEstimator<uint64_t> est = EstimateQuantilesInMemory(data, config);
  GroundTruth<uint64_t> truth(data);

  Xoshiro256 rng(9);
  for (int i = 0; i < 200; ++i) {
    const uint64_t probe = data[rng.NextBounded(data.size())];
    RankEstimate r = est.EstimateRank(probe);
    EXPECT_LE(r.min_rank_le, truth.RankLe(probe));
    EXPECT_GE(r.max_rank_le, truth.RankLe(probe));
    EXPECT_LE(r.min_rank_lt, truth.RankLt(probe));
    EXPECT_GE(r.max_rank_lt, truth.RankLt(probe));
  }
}

// -------------------------------- Property sweep: Lemmas 1-3 via TEST_P --

class OpaqGuaranteeTest
    : public ::testing::TestWithParam<
          std::tuple<Distribution, uint64_t, uint64_t, uint64_t>> {};

TEST_P(OpaqGuaranteeTest, BracketsAndErrorBoundsHoldForAllDectiles) {
  const Distribution distribution = std::get<0>(GetParam());
  const uint64_t n = std::get<1>(GetParam());
  const uint64_t m = std::get<2>(GetParam());
  const uint64_t s = std::get<3>(GetParam());

  DatasetSpec spec;
  spec.n = n;
  spec.distribution = distribution;
  spec.seed = n ^ (m << 8) ^ (s << 16);
  auto data = GenerateDataset<uint64_t>(spec);

  OpaqConfig config;
  config.run_size = m;
  config.samples_per_run = s;
  OpaqEstimator<uint64_t> est = EstimateQuantilesInMemory(data, config);
  GroundTruth<uint64_t> truth(data);

  ASSERT_EQ(est.total_elements(), n);
  for (int d = 1; d <= 9; ++d) {
    auto e = est.Quantile(d / 10.0);
    EXPECT_TRUE(BracketHolds(truth, e))
        << DistributionName(distribution) << " n=" << n << " m=" << m
        << " s=" << s << " dectile=" << d;
  }
  // Lemma 3 in element counts: at most 2*budget elements strictly inside
  // the bracket beyond the duplicates of the bounds themselves.
  auto mid = est.Quantile(0.5);
  if (!mid.lower_clamped && !mid.upper_clamped) {
    uint64_t inside = truth.CountInClosedRange(mid.lower, mid.upper);
    uint64_t dups = truth.CountEqual(mid.lower) + truth.CountEqual(mid.upper);
    EXPECT_LE(inside, 2 * mid.max_rank_error + dups);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OpaqGuaranteeTest,
    ::testing::Combine(
        ::testing::Values(Distribution::kUniform, Distribution::kZipf,
                          Distribution::kNormal, Distribution::kSequential,
                          Distribution::kReverseSequential,
                          Distribution::kConstant, Distribution::kSawtooth),
        ::testing::Values(uint64_t{10000}, uint64_t{100000}),
        ::testing::Values(uint64_t{1000}, uint64_t{5000}),
        ::testing::Values(uint64_t{10}, uint64_t{100}, uint64_t{500})),
    [](const auto& info) {
      return std::string(DistributionName(std::get<0>(info.param))) + "_n" +
             std::to_string(std::get<1>(info.param)) + "_m" +
             std::to_string(std::get<2>(info.param)) + "_s" +
             std::to_string(std::get<3>(info.param));
    });

TEST(OpaqGuaranteeTest2, NonDivisibleTailRunStillBrackets) {
  // n not divisible by m: the tail run has uncovered elements; bounds stay
  // sound (with the widened budget).
  DatasetSpec spec;
  spec.n = 10037;  // prime-ish
  spec.distribution = Distribution::kUniform;
  auto data = GenerateDataset<uint64_t>(spec);
  OpaqConfig config;
  config.run_size = 1000;
  config.samples_per_run = 100;
  OpaqEstimator<uint64_t> est = EstimateQuantilesInMemory(data, config);
  GroundTruth<uint64_t> truth(data);
  EXPECT_GT(est.sample_list().accounting().num_uncovered, 0u);
  for (int d = 1; d <= 9; ++d) {
    EXPECT_TRUE(BracketHolds(truth, est.Quantile(d / 10.0))) << d;
  }
}

TEST(OpaqGuaranteeTest2, SelectionAlgorithmDoesNotChangeSamples) {
  // The sample at a regular rank is a fixed order statistic, so the whole
  // estimate is identical across selection algorithms.
  DatasetSpec spec;
  spec.n = 50000;
  spec.distribution = Distribution::kZipf;
  auto data = GenerateDataset<uint64_t>(spec);
  OpaqConfig config;
  config.run_size = 5000;
  config.samples_per_run = 100;

  std::vector<std::vector<uint64_t>> sample_lists;
  for (SelectAlgorithm a :
       {SelectAlgorithm::kStdNthElement, SelectAlgorithm::kMedianOfMedians,
        SelectAlgorithm::kFloydRivest, SelectAlgorithm::kIntroSelect}) {
    config.select_algorithm = a;
    OpaqEstimator<uint64_t> est = EstimateQuantilesInMemory(data, config);
    sample_lists.push_back(est.sample_list().samples());
  }
  for (size_t i = 1; i < sample_lists.size(); ++i) {
    EXPECT_EQ(sample_lists[i], sample_lists[0]);
  }
}

// ---------------------------------------------------- Incremental merging --

TEST(IncrementalTest, MergedSketchEqualsOneShotSketch) {
  // Paper §4: keep the sorted samples of old runs; sample only the new runs
  // and merge. Result must equal sampling everything at once.
  DatasetSpec spec;
  spec.n = 40000;
  spec.distribution = Distribution::kUniform;
  auto data = GenerateDataset<uint64_t>(spec);
  OpaqConfig config;
  config.run_size = 2000;
  config.samples_per_run = 200;

  // One-shot over the whole data.
  OpaqEstimator<uint64_t> whole = EstimateQuantilesInMemory(data, config);

  // Split into "old" and "new" halves, sketch separately, merge.
  std::vector<uint64_t> old_half(data.begin(), data.begin() + 20000);
  std::vector<uint64_t> new_half(data.begin() + 20000, data.end());
  OpaqEstimator<uint64_t> old_est = EstimateQuantilesInMemory(old_half, config);
  OpaqEstimator<uint64_t> new_est = EstimateQuantilesInMemory(new_half, config);
  auto merged = SampleList<uint64_t>::Merge(old_est.sample_list(),
                                            new_est.sample_list());
  ASSERT_TRUE(merged.ok());
  OpaqEstimator<uint64_t> combined(std::move(merged).value());

  EXPECT_EQ(combined.sample_list().samples(),
            whole.sample_list().samples());
  EXPECT_EQ(combined.total_elements(), whole.total_elements());
  for (int d = 1; d <= 9; ++d) {
    auto a = combined.Quantile(d / 10.0);
    auto b = whole.Quantile(d / 10.0);
    EXPECT_EQ(a.lower, b.lower);
    EXPECT_EQ(a.upper, b.upper);
  }
}

TEST(IncrementalTest, ManySmallIncrementsStaySound) {
  DatasetSpec spec;
  spec.n = 30000;
  spec.distribution = Distribution::kZipf;
  auto data = GenerateDataset<uint64_t>(spec);
  OpaqConfig config;
  config.run_size = 1000;
  config.samples_per_run = 50;

  SampleList<uint64_t> acc;
  for (int chunk = 0; chunk < 10; ++chunk) {
    std::vector<uint64_t> part(data.begin() + chunk * 3000,
                               data.begin() + (chunk + 1) * 3000);
    OpaqEstimator<uint64_t> est = EstimateQuantilesInMemory(part, config);
    auto merged = SampleList<uint64_t>::Merge(acc, est.sample_list());
    ASSERT_TRUE(merged.ok());
    acc = std::move(merged).value();
  }
  OpaqEstimator<uint64_t> est(std::move(acc));
  GroundTruth<uint64_t> truth(data);
  for (int d = 1; d <= 9; ++d) {
    EXPECT_TRUE(BracketHolds(truth, est.Quantile(d / 10.0))) << d;
  }
}

// --------------------------------------------------------- File pipeline --

TEST(FilePipelineTest, ConsumeFileMatchesInMemory) {
  DatasetSpec spec;
  spec.n = 25000;
  spec.distribution = Distribution::kUniform;
  auto data = GenerateDataset<uint64_t>(spec);
  MemoryBlockDevice dev;
  ASSERT_TRUE(WriteDataset(data, &dev).ok());
  auto file = TypedDataFile<uint64_t>::Open(&dev);
  ASSERT_TRUE(file.ok());

  OpaqConfig config;
  config.run_size = 2500;
  config.samples_per_run = 250;
  OpaqSketch<uint64_t> sketch(config);
  double io_seconds = 0;
  ASSERT_TRUE(sketch.Consume(FileRunProvider<uint64_t>(&*file), &io_seconds).ok());
  EXPECT_EQ(sketch.runs_consumed(), 10u);
  EXPECT_EQ(sketch.elements_consumed(), 25000u);
  EXPECT_GE(io_seconds, 0.0);
  OpaqEstimator<uint64_t> from_file = sketch.Finalize();
  OpaqEstimator<uint64_t> in_memory = EstimateQuantilesInMemory(data, config);
  EXPECT_EQ(from_file.sample_list().samples(),
            in_memory.sample_list().samples());
}

TEST(FilePipelineTest, EstimateQuantilesFromFileHelper) {
  DatasetSpec spec;
  spec.n = 10000;
  auto data = GenerateDataset<uint64_t>(spec);
  MemoryBlockDevice dev;
  ASSERT_TRUE(WriteDataset(data, &dev).ok());
  auto file = TypedDataFile<uint64_t>::Open(&dev);
  ASSERT_TRUE(file.ok());
  OpaqConfig config;
  config.run_size = 1000;
  config.samples_per_run = 100;
  auto estimates = EstimateQuantilesFromFile(&*file, config, 10);
  ASSERT_TRUE(estimates.ok());
  EXPECT_EQ(estimates->size(), 9u);
  GroundTruth<uint64_t> truth(data);
  for (const auto& e : *estimates) EXPECT_TRUE(BracketHolds(truth, e));
}

// ------------------------------------------------------ Exact second pass --

TEST(ExactSecondPassTest, RecoversExactQuantile) {
  DatasetSpec spec;
  spec.n = 20000;
  spec.distribution = Distribution::kUniform;
  auto data = GenerateDataset<uint64_t>(spec);
  MemoryBlockDevice dev;
  ASSERT_TRUE(WriteDataset(data, &dev).ok());
  auto file = TypedDataFile<uint64_t>::Open(&dev);
  ASSERT_TRUE(file.ok());

  OpaqConfig config;
  config.run_size = 2000;
  config.samples_per_run = 100;
  OpaqSketch<uint64_t> sketch(config);
  ASSERT_TRUE(sketch.Consume(FileRunProvider<uint64_t>(&*file)).ok());
  OpaqEstimator<uint64_t> est = sketch.Finalize();
  GroundTruth<uint64_t> truth(data);

  for (double phi : {0.25, 0.5, 0.75, 0.9}) {
    auto e = est.Quantile(phi);
    ASSERT_FALSE(e.lower_clamped);
    ASSERT_FALSE(e.upper_clamped);
    auto exact = ExactQuantileSecondPass(FileRunProvider<uint64_t>(&*file),
                                         e, config.read_options());
    ASSERT_TRUE(exact.ok()) << exact.status().ToString();
    EXPECT_EQ(*exact, truth.Quantile(phi)) << phi;
  }
}

TEST(ExactSecondPassTest, WorksOnDuplicateHeavyData) {
  DatasetSpec spec;
  spec.n = 10000;
  spec.distribution = Distribution::kZipf;
  spec.zipf_universe = 50;  // very few distinct values
  auto data = GenerateDataset<uint64_t>(spec);
  MemoryBlockDevice dev;
  ASSERT_TRUE(WriteDataset(data, &dev).ok());
  auto file = TypedDataFile<uint64_t>::Open(&dev);
  ASSERT_TRUE(file.ok());

  OpaqConfig config;
  config.run_size = 1000;
  config.samples_per_run = 100;
  OpaqSketch<uint64_t> sketch(config);
  ASSERT_TRUE(sketch.Consume(FileRunProvider<uint64_t>(&*file)).ok());
  OpaqEstimator<uint64_t> est = sketch.Finalize();
  GroundTruth<uint64_t> truth(data);
  auto e = est.Quantile(0.5);
  // With so few distinct values the bracket may hold many duplicates; give
  // the pass a budget big enough to hold them.
  auto exact = ExactQuantileSecondPass(FileRunProvider<uint64_t>(&*file), e,
                                       config.read_options(), spec.n);
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  EXPECT_EQ(*exact, truth.Quantile(0.5));
}

TEST(ExactSecondPassTest, RefusesClampedBounds) {
  std::vector<uint64_t> data(100);
  std::iota(data.begin(), data.end(), 0);
  OpaqConfig config;
  config.run_size = 10;
  config.samples_per_run = 2;  // c=5, r=10: small psi clamps
  OpaqEstimator<uint64_t> est = EstimateQuantilesInMemory(data, config);
  auto e = est.QuantileByRank(1);
  ASSERT_TRUE(e.lower_clamped);
  MemoryBlockDevice dev;
  ASSERT_TRUE(WriteDataset(data, &dev).ok());
  auto file = TypedDataFile<uint64_t>::Open(&dev);
  ASSERT_TRUE(file.ok());
  auto exact = ExactQuantileSecondPass(FileRunProvider<uint64_t>(&*file), e,
                                       config.read_options());
  EXPECT_FALSE(exact.ok());
  EXPECT_EQ(exact.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ExactSecondPassTest, BudgetExhaustionSurfaces) {
  std::vector<uint64_t> data(1000, 7);  // all duplicates
  OpaqConfig config;
  config.run_size = 100;
  config.samples_per_run = 10;
  OpaqEstimator<uint64_t> est = EstimateQuantilesInMemory(data, config);
  MemoryBlockDevice dev;
  ASSERT_TRUE(WriteDataset(data, &dev).ok());
  auto file = TypedDataFile<uint64_t>::Open(&dev);
  ASSERT_TRUE(file.ok());
  auto e = est.Quantile(0.5);
  auto exact = ExactQuantileSecondPass(FileRunProvider<uint64_t>(&*file), e,
                                       config.read_options(), /*budget=*/10);
  EXPECT_FALSE(exact.ok());
  EXPECT_EQ(exact.status().code(), StatusCode::kResourceExhausted);
}

// ---------------------------------------------------------- Typed sweeps --

template <typename K>
class TypedOpaqTest : public ::testing::Test {};

using KeyTypes = ::testing::Types<uint32_t, uint64_t, int64_t, float, double>;
TYPED_TEST_SUITE(TypedOpaqTest, KeyTypes);

TYPED_TEST(TypedOpaqTest, BracketsHoldForEveryKeyType) {
  DatasetSpec spec;
  spec.n = 20000;
  spec.distribution = Distribution::kUniform;
  auto data = GenerateDataset<TypeParam>(spec);
  OpaqConfig config;
  config.run_size = 2000;
  config.samples_per_run = 100;
  OpaqEstimator<TypeParam> est = EstimateQuantilesInMemory(data, config);
  GroundTruth<TypeParam> truth(data);
  for (int d = 1; d <= 9; ++d) {
    EXPECT_TRUE(BracketHolds(truth, est.Quantile(d / 10.0))) << d;
  }
}

}  // namespace
}  // namespace opaq
