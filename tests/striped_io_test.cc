// Unit tests for the striped multi-disk storage backend: chunk geometry,
// header validation at Open, scatter/gather reads and writes, and the
// striped run source's ordering contract (threaded and inline modes).

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "data/dataset.h"
#include "io/block_device.h"
#include "io/run_reader.h"
#include "io/striped_data_file.h"
#include "io/striped_run_source.h"
#include "io/tempdir.h"

namespace opaq {
namespace {

using Key = uint64_t;

// A striped file over fresh memory devices, kept alive together.
struct MemoryStripes {
  std::vector<std::unique_ptr<MemoryBlockDevice>> devices;
  Result<StripedDataFile<Key>> file = Status::Internal("unset");

  MemoryStripes(const std::vector<Key>& data, int stripes,
                uint64_t chunk_elements) {
    std::vector<BlockDevice*> raw;
    for (int s = 0; s < stripes; ++s) {
      devices.push_back(std::make_unique<MemoryBlockDevice>());
      raw.push_back(devices.back().get());
    }
    file = WriteStriped(data, raw, chunk_elements);
  }

  std::vector<BlockDevice*> raw() const {
    std::vector<BlockDevice*> out;
    for (const auto& device : devices) out.push_back(device.get());
    return out;
  }
};

std::vector<Key> Iota(uint64_t n) {
  std::vector<Key> out(n);
  std::iota(out.begin(), out.end(), 0);
  return out;
}

TEST(StripedDataFileTest, RoundTripsAcrossGeometries) {
  struct Case {
    uint64_t n;
    int stripes;
    uint64_t chunk;
  };
  const Case kCases[] = {
      {0, 2, 8},     // empty dataset
      {1, 4, 8},     // single element
      {64, 1, 8},    // degenerate single stripe
      {64, 2, 8},    // chunks divide evenly
      {100, 3, 7},   // ragged final chunk, uneven stripes
      {99, 4, 100},  // one partial chunk smaller than the chunk size
      {1000, 4, 1},  // element-granular striping
  };
  for (const Case& c : kCases) {
    std::vector<Key> data = Iota(c.n);
    MemoryStripes stripes(data, c.stripes, c.chunk);
    ASSERT_TRUE(stripes.file.ok())
        << stripes.file.status().ToString() << " n=" << c.n;
    EXPECT_EQ(stripes.file->size(), c.n);
    EXPECT_EQ(stripes.file->num_stripes(), static_cast<uint32_t>(c.stripes));
    auto all = stripes.file->ReadAll();
    ASSERT_TRUE(all.ok()) << "n=" << c.n;
    EXPECT_EQ(*all, data) << "n=" << c.n << " stripes=" << c.stripes
                          << " chunk=" << c.chunk;
  }
}

TEST(StripedDataFileTest, PlacesChunksRoundRobin) {
  // 6 chunks of 4 elements over 3 stripes: stripe s must hold chunks s and
  // s+3 back to back after its header.
  std::vector<Key> data = Iota(24);
  MemoryStripes stripes(data, 3, 4);
  ASSERT_TRUE(stripes.file.ok());
  for (uint32_t s = 0; s < 3; ++s) {
    std::vector<Key> on_stripe(8);
    ASSERT_TRUE(stripes.devices[s]
                    ->ReadAt(sizeof(StripeFileHeader), on_stripe.data(),
                             8 * sizeof(Key))
                    .ok());
    std::vector<Key> expected;
    for (uint64_t c : {uint64_t{s}, uint64_t{s} + 3}) {
      for (uint64_t i = 0; i < 4; ++i) expected.push_back(c * 4 + i);
    }
    EXPECT_EQ(on_stripe, expected) << "stripe " << s;
  }
  EXPECT_EQ(stripes.file->StripeElements(0), 8u);
}

TEST(StripedDataFileTest, StripeElementsMatchesBruteForce) {
  // Open() trusts the closed-form StripeElements for its truncation check;
  // pin it against the per-chunk walk across ragged geometries.
  for (uint64_t n : {0u, 1u, 7u, 99u, 100u, 1000u}) {
    for (int stripes : {1, 2, 3, 5}) {
      for (uint64_t chunk : {1u, 7u, 10u, 128u}) {
        MemoryStripes striped(Iota(n), stripes, chunk);
        ASSERT_TRUE(striped.file.ok());
        uint64_t total = 0;
        for (uint32_t s = 0; s < striped.file->num_stripes(); ++s) {
          uint64_t brute = 0;
          for (uint64_t c = s; c < striped.file->num_chunks();
               c += striped.file->num_stripes()) {
            brute += striped.file->ChunkLength(c);
          }
          EXPECT_EQ(striped.file->StripeElements(s), brute)
              << "n=" << n << " stripes=" << stripes << " chunk=" << chunk
              << " s=" << s;
          total += brute;
        }
        EXPECT_EQ(total, n);
      }
    }
  }
}

TEST(StripedDataFileTest, SubRangeReadsCrossChunkAndStripeBoundaries) {
  std::vector<Key> data = Iota(103);
  MemoryStripes stripes(data, 4, 10);
  ASSERT_TRUE(stripes.file.ok());
  for (uint64_t first : {0u, 3u, 9u, 10u, 39u, 95u}) {
    for (uint64_t count : {1u, 7u, 10u, 11u, 64u}) {
      if (first + count > data.size()) continue;
      std::vector<Key> out(count);
      ASSERT_TRUE(stripes.file->Read(first, count, out.data()).ok());
      EXPECT_EQ(out, std::vector<Key>(data.begin() + first,
                                      data.begin() + first + count))
          << "first=" << first << " count=" << count;
    }
  }
}

TEST(StripedDataFileTest, ReadPastEndIsOutOfRange) {
  MemoryStripes stripes(Iota(50), 2, 8);
  ASSERT_TRUE(stripes.file.ok());
  std::vector<Key> out(10);
  EXPECT_EQ(stripes.file->Read(45, 10, out.data()).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(stripes.file->Read(51, 1, out.data()).code(),
            StatusCode::kOutOfRange);
  // A huge count must not wrap around the end computation.
  EXPECT_EQ(stripes.file->Read(1, UINT64_MAX, out.data()).code(),
            StatusCode::kOutOfRange);
}

TEST(StripedDataFileTest, AppendPersistsAcrossReopen) {
  MemoryStripes stripes(Iota(10), 3, 4);
  ASSERT_TRUE(stripes.file.ok());
  std::vector<Key> extra{100, 101, 102, 103, 104};
  ASSERT_TRUE(stripes.file->Append(extra).ok());
  EXPECT_EQ(stripes.file->size(), 15u);

  auto reopened = StripedDataFile<Key>::Open(stripes.raw());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->size(), 15u);
  auto all = reopened->ReadAll();
  ASSERT_TRUE(all.ok());
  std::vector<Key> expected = Iota(10);
  expected.insert(expected.end(), extra.begin(), extra.end());
  EXPECT_EQ(*all, expected);
}

TEST(StripedDataFileTest, OpenRejectsMisorderedStripes) {
  MemoryStripes stripes(Iota(64), 3, 8);
  ASSERT_TRUE(stripes.file.ok());
  std::vector<BlockDevice*> swapped = stripes.raw();
  std::swap(swapped[0], swapped[2]);
  auto reopened = StripedDataFile<Key>::Open(swapped);
  EXPECT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kInvalidArgument);
}

TEST(StripedDataFileTest, OpenRejectsWrongStripeCount) {
  MemoryStripes stripes(Iota(64), 3, 8);
  ASSERT_TRUE(stripes.file.ok());
  std::vector<BlockDevice*> subset = stripes.raw();
  subset.pop_back();
  auto reopened = StripedDataFile<Key>::Open(subset);
  EXPECT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kInvalidArgument);
}

TEST(StripedDataFileTest, OpenRejectsForeignStripe) {
  MemoryStripes a(Iota(64), 2, 8);
  MemoryStripes b(Iota(32), 2, 8);  // different geometry
  ASSERT_TRUE(a.file.ok());
  ASSERT_TRUE(b.file.ok());
  std::vector<BlockDevice*> mixed{a.devices[0].get(), b.devices[1].get()};
  auto reopened = StripedDataFile<Key>::Open(mixed);
  EXPECT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kInvalidArgument);
}

TEST(StripedDataFileTest, OpenRejectsWrongKeyType) {
  MemoryStripes stripes(Iota(64), 2, 8);
  ASSERT_TRUE(stripes.file.ok());
  auto reopened = StripedDataFile<double>::Open(stripes.raw());
  EXPECT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kInvalidArgument);
}

TEST(StripedDataFileTest, OpenRejectsTruncatedStripe) {
  MemoryStripes stripes(Iota(64), 2, 8);
  ASSERT_TRUE(stripes.file.ok());
  // Rebuild stripe 1 shorter than its share: copy the header only.
  StripeFileHeader header;
  ASSERT_TRUE(
      stripes.devices[1]->ReadAt(0, &header, sizeof(header)).ok());
  MemoryBlockDevice short_stripe;
  ASSERT_TRUE(short_stripe.WriteAt(0, &header, sizeof(header)).ok());
  std::vector<BlockDevice*> devices{stripes.devices[0].get(), &short_stripe};
  auto reopened = StripedDataFile<Key>::Open(devices);
  EXPECT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kInvalidArgument);
}

TEST(StripedDataFileTest, OpenRejectsGarbage) {
  MemoryBlockDevice junk;
  std::vector<uint8_t> bytes(128, 0x5A);
  ASSERT_TRUE(junk.WriteAt(0, bytes.data(), bytes.size()).ok());
  std::vector<BlockDevice*> devices{&junk};
  auto opened = StripedDataFile<Key>::Open(devices);
  EXPECT_FALSE(opened.ok());
}

TEST(StripedDataFileTest, CreateRejectsBadShapes) {
  MemoryBlockDevice device;
  std::vector<BlockDevice*> one{&device};
  EXPECT_FALSE(StripedDataFile<Key>::Create(one, 0).ok());  // zero chunk
  EXPECT_FALSE(
      StripedDataFile<Key>::Create(std::vector<BlockDevice*>{}, 8).ok());
  std::vector<BlockDevice*> with_null{&device, nullptr};
  EXPECT_FALSE(StripedDataFile<Key>::Create(with_null, 8).ok());
}

TEST(StripedDataFileTest, WorksOnRealFiles) {
  auto dir = TempDir::Make();
  ASSERT_TRUE(dir.ok());
  DatasetSpec spec;
  spec.n = 5000;
  spec.distribution = Distribution::kZipf;
  std::vector<Key> data = GenerateDataset<Key>(spec);
  {
    std::vector<std::unique_ptr<FileBlockDevice>> devices;
    std::vector<BlockDevice*> raw;
    for (int s = 0; s < 3; ++s) {
      auto device = FileBlockDevice::Make(
          dir->FilePath("data.s" + std::to_string(s)),
          FileBlockDevice::Mode::kCreate);
      ASSERT_TRUE(device.ok());
      devices.push_back(std::move(device).value());
      raw.push_back(devices.back().get());
    }
    ASSERT_TRUE(WriteStriped(data, raw, 512).ok());
    for (auto& device : devices) ASSERT_TRUE(device->Sync().ok());
  }
  std::vector<std::unique_ptr<FileBlockDevice>> devices;
  std::vector<BlockDevice*> raw;
  for (int s = 0; s < 3; ++s) {
    auto device = FileBlockDevice::Make(
        dir->FilePath("data.s" + std::to_string(s)),
        FileBlockDevice::Mode::kOpen);
    ASSERT_TRUE(device.ok());
    devices.push_back(std::move(device).value());
    raw.push_back(devices.back().get());
  }
  auto file = StripedDataFile<Key>::Open(raw);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  auto all = file->ReadAll();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, data);
}

// ------------------------------------------------------- StripedRunSource --

std::vector<Key> Drain(RunSource<Key>* source,
                       std::vector<uint64_t>* run_lengths = nullptr) {
  std::vector<Key> buffer, seen;
  while (true) {
    auto more = source->NextRun(&buffer);
    OPAQ_CHECK_OK(more.status());
    if (!*more) break;
    if (run_lengths != nullptr) run_lengths->push_back(buffer.size());
    seen.insert(seen.end(), buffer.begin(), buffer.end());
  }
  return seen;
}

TEST(StripedRunSourceTest, DeliversExactRunOrder) {
  // Every (stripes, chunk, run) shape must reproduce the plain reader's run
  // stream exactly: same run lengths, same contents, same order.
  std::vector<Key> data = Iota(10007);  // ragged everywhere
  for (int stripes : {1, 2, 4}) {
    for (uint64_t chunk : {64u, 100u, 1000u, 4096u}) {
      for (uint64_t run : {100u, 128u, 999u, 20000u}) {
        MemoryStripes striped(data, stripes, chunk);
        ASSERT_TRUE(striped.file.ok());
        for (bool threaded : {false, true}) {
          StripedReaderOptions options;
          options.threaded = threaded;
          StripedRunSource<Key> source(&*striped.file, run, options);
          std::vector<uint64_t> lengths;
          EXPECT_EQ(Drain(&source, &lengths), data)
              << "stripes=" << stripes << " chunk=" << chunk
              << " run=" << run << " threaded=" << threaded;
          // Run shape must match the plain RunReader contract.
          for (size_t i = 0; i + 1 < lengths.size(); ++i) {
            EXPECT_EQ(lengths[i], run);
          }
          if (!lengths.empty()) {
            EXPECT_EQ(lengths.back(),
                      data.size() % run == 0 ? run : data.size() % run);
          }
        }
      }
    }
  }
}

TEST(StripedRunSourceTest, HonorsSubRanges) {
  std::vector<Key> data = Iota(1000);
  MemoryStripes striped(data, 3, 32);
  ASSERT_TRUE(striped.file.ok());
  MemoryBlockDevice plain;
  ASSERT_TRUE(WriteDataset(data, &plain).ok());
  auto plain_file = TypedDataFile<Key>::Open(&plain);
  ASSERT_TRUE(plain_file.ok());

  struct Range {
    uint64_t first, count;
  };
  for (const Range& r : {Range{130, 333}, Range{0, 0}, Range{999, 100},
                         Range{1000, 5}, Range{32, UINT64_MAX},
                         Range{7, 32}}) {
    RunReader<Key> reference(&*plain_file, 64, r.first, r.count);
    std::vector<Key> expected = Drain(&reference);
    for (bool threaded : {false, true}) {
      StripedReaderOptions options;
      options.threaded = threaded;
      options.prefetch_chunks = 3;
      StripedRunSource<Key> source(&*striped.file, 64, options, r.first,
                                   r.count);
      EXPECT_EQ(Drain(&source), expected)
          << "first=" << r.first << " count=" << r.count
          << " threaded=" << threaded;
    }
  }
}

TEST(StripedRunSourceTest, ExhaustedSourceKeepsReportingEof) {
  MemoryStripes striped(Iota(100), 2, 16);
  ASSERT_TRUE(striped.file.ok());
  StripedRunSource<Key> source(&*striped.file, 64);
  std::vector<Key> buffer;
  Drain(&source);
  for (int i = 0; i < 3; ++i) {
    auto more = source.NextRun(&buffer);
    ASSERT_TRUE(more.ok());
    EXPECT_FALSE(*more);
  }
}

TEST(StripedRunSourceTest, AbandonedMidStreamJoinsCleanly) {
  // Destroying the source with most chunks unconsumed (prefetch rings full,
  // reader threads blocked on Send) must close the pipeline and join every
  // stripe thread — no hang, no leak (asan/tsan gate this).
  MemoryStripes striped(Iota(64 * 1024), 4, 256);
  ASSERT_TRUE(striped.file.ok());
  for (uint64_t depth : {1u, 4u}) {
    StripedReaderOptions options;
    options.prefetch_chunks = depth;
    StripedRunSource<Key> source(&*striped.file, 1024, options);
    std::vector<Key> buffer;
    auto more = source.NextRun(&buffer);
    ASSERT_TRUE(more.ok());
    EXPECT_TRUE(*more);
  }
}

TEST(StripedRunSourceTest, InlineModeIgnoresPrefetchDepth) {
  // kSync maps to inline reads where the depth is meaningless; a bogus
  // depth (e.g. 0 from an unset flag) must not abort — only the threaded
  // mode allocates prefetch rings and enforces the bound.
  MemoryStripes striped(Iota(200), 2, 32);
  ASSERT_TRUE(striped.file.ok());
  StripedReaderOptions options;
  options.threaded = false;
  options.prefetch_chunks = 0;
  StripedRunSource<Key> source(&*striped.file, 64, options);
  EXPECT_EQ(Drain(&source), Iota(200));
}

TEST(StripedRunSourceTest, DepthLargerThanChunkCount) {
  MemoryStripes striped(Iota(300), 2, 50);  // 6 chunks, 3 per stripe
  ASSERT_TRUE(striped.file.ok());
  StripedReaderOptions options;
  options.prefetch_chunks = 16;
  StripedRunSource<Key> source(&*striped.file, 100, options);
  EXPECT_EQ(Drain(&source), Iota(300));
}

}  // namespace
}  // namespace opaq
