// Tests for src/parallel: the simulated message-passing cluster, the
// collectives, both global merge algorithms, rebalancing, and the full
// parallel OPAQ pipeline (checked against the sequential guarantees).

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/opaq.h"
#include "data/dataset.h"
#include "metrics/ground_truth.h"
#include "metrics/rer.h"
#include "opaq/parallel.h"
#include "opaq/source.h"
#include "parallel/bitonic_merge.h"
#include "parallel/collectives.h"
#include "parallel/global_merge.h"
#include "parallel/parallel_opaq.h"
#include "parallel/sample_merge.h"

namespace opaq {
namespace {

Cluster::Options SmallCluster(int p) {
  Cluster::Options options;
  options.num_processors = p;
  options.comm_mode = Cluster::CommMode::kAccount;
  return options;
}

// ----------------------------------------------------------------- Basics --

TEST(ClusterTest, PointToPointRoundTrip) {
  Cluster cluster(SmallCluster(2));
  Status s = cluster.Run([](ProcessorContext& ctx) -> Status {
    if (ctx.rank() == 0) {
      std::vector<uint64_t> payload{1, 2, 3};
      OPAQ_RETURN_IF_ERROR(ctx.SendVector(1, 7, payload));
    } else {
      std::vector<uint64_t> got = ctx.RecvVector<uint64_t>(0, 7);
      if (got != std::vector<uint64_t>{1, 2, 3}) {
        return Status::Internal("payload mismatch");
      }
    }
    return Status::OK();
  });
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(ClusterTest, MessagesMatchedBySourceAndTag) {
  Cluster cluster(SmallCluster(3));
  Status s = cluster.Run([](ProcessorContext& ctx) -> Status {
    if (ctx.rank() != 2) {
      // Both senders use the same tag; receiver distinguishes by source.
      OPAQ_RETURN_IF_ERROR(ctx.SendValue(2, 5, static_cast<uint64_t>(ctx.rank() + 100)));
    } else {
      // Receive in the opposite order of sending to prove matching.
      uint64_t from1 = ctx.RecvValue<uint64_t>(1, 5);
      uint64_t from0 = ctx.RecvValue<uint64_t>(0, 5);
      if (from0 != 100 || from1 != 101) {
        return Status::Internal("bad source matching");
      }
    }
    return Status::OK();
  });
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(ClusterTest, FifoPerSourceTagPair) {
  Cluster cluster(SmallCluster(2));
  Status s = cluster.Run([](ProcessorContext& ctx) -> Status {
    if (ctx.rank() == 0) {
      for (uint64_t i = 0; i < 50; ++i) {
        OPAQ_RETURN_IF_ERROR(ctx.SendValue(1, 1, i));
      }
    } else {
      for (uint64_t i = 0; i < 50; ++i) {
        if (ctx.RecvValue<uint64_t>(0, 1) != i) {
          return Status::Internal("out of order");
        }
      }
    }
    return Status::OK();
  });
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(ClusterTest, CommStatsBillTheModel) {
  Cluster::Options options = SmallCluster(2);
  options.cost_model.tau_seconds = 1e-3;
  options.cost_model.mu_seconds_per_byte = 1e-6;
  Cluster cluster(options);
  Status s = cluster.Run([](ProcessorContext& ctx) -> Status {
    if (ctx.rank() == 0) {
      std::vector<uint8_t> kb(1000, 1);
      OPAQ_RETURN_IF_ERROR(ctx.Send(1, 1, kb.data(), kb.size()));
    } else {
      ctx.Recv(0, 1);
    }
    return Status::OK();
  });
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(cluster.comm_stats(0).messages_sent.load(), 1u);
  EXPECT_EQ(cluster.comm_stats(0).bytes_sent.load(), 1000u);
  EXPECT_EQ(cluster.comm_stats(1).messages_received.load(), 1u);
  // tau + 1000*mu = 1ms + 1ms = 2ms.
  EXPECT_NEAR(cluster.comm_stats(0).modeled_comm_seconds(), 0.002, 1e-4);
}

TEST(ClusterTest, ErrorPropagatesFromAnyRank) {
  Cluster cluster(SmallCluster(4));
  Status s = cluster.Run([](ProcessorContext& ctx) -> Status {
    if (ctx.rank() == 2) return Status::IoError("rank 2 exploded");
    return Status::OK();
  });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

TEST(ClusterTest, ReusableAcrossRuns) {
  Cluster cluster(SmallCluster(2));
  for (int round = 0; round < 3; ++round) {
    Status s = cluster.Run([round](ProcessorContext& ctx) -> Status {
      if (ctx.rank() == 0) {
        OPAQ_RETURN_IF_ERROR(ctx.SendValue(1, 9, static_cast<uint64_t>(round * 10)));
      } else {
        uint64_t got = ctx.RecvValue<uint64_t>(0, 9);
        if (got != static_cast<uint64_t>(round * 10)) {
          return Status::Internal("stale message from a previous run");
        }
      }
      return Status::OK();
    });
    ASSERT_TRUE(s.ok()) << s.ToString();
  }
}

TEST(ClusterTest, BarrierSynchronises) {
  Cluster cluster(SmallCluster(4));
  std::atomic<int> phase_one{0};
  Status s = cluster.Run([&](ProcessorContext& ctx) -> Status {
    phase_one.fetch_add(1);
    ctx.Barrier();
    if (phase_one.load() != 4) {
      return Status::Internal("barrier released early");
    }
    return Status::OK();
  });
  EXPECT_TRUE(s.ok()) << s.ToString();
}

// ------------------------------------------------------------ Collectives --

TEST(CollectivesTest, GatherAndBroadcast) {
  Cluster cluster(SmallCluster(4));
  Status s = cluster.Run([](ProcessorContext& ctx) -> Status {
    std::vector<uint64_t> mine{static_cast<uint64_t>(ctx.rank())};
    auto gathered = collectives::GatherVectors(ctx, 0, mine);
    if (ctx.rank() == 0) {
      for (int r = 0; r < 4; ++r) {
        if (gathered[r] != std::vector<uint64_t>{static_cast<uint64_t>(r)}) {
          return Status::Internal("gather mismatch");
        }
      }
    }
    std::vector<uint64_t> payload;
    if (ctx.rank() == 0) payload = {7, 8, 9};
    collectives::BroadcastVector(ctx, 0, &payload);
    if (payload != std::vector<uint64_t>{7, 8, 9}) {
      return Status::Internal("broadcast mismatch");
    }
    return Status::OK();
  });
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(CollectivesTest, AllGatherGivesEveryoneEverything) {
  Cluster cluster(SmallCluster(3));
  Status s = cluster.Run([](ProcessorContext& ctx) -> Status {
    std::vector<uint64_t> mine(ctx.rank() + 1,
                               static_cast<uint64_t>(ctx.rank()));
    auto all = collectives::AllGatherVectors(ctx, mine);
    for (int r = 0; r < 3; ++r) {
      if (all[r] != std::vector<uint64_t>(r + 1, static_cast<uint64_t>(r))) {
        return Status::Internal("allgather mismatch at rank " +
                                std::to_string(r));
      }
    }
    return Status::OK();
  });
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(CollectivesTest, AllToAllRoutesPersonalisedData) {
  Cluster cluster(SmallCluster(4));
  Status s = cluster.Run([](ProcessorContext& ctx) -> Status {
    // outgoing[r] = {rank*10 + r}.
    std::vector<std::vector<uint64_t>> outgoing(4);
    for (int r = 0; r < 4; ++r) {
      outgoing[r] = {static_cast<uint64_t>(ctx.rank() * 10 + r)};
    }
    auto incoming = collectives::AllToAllVectors(ctx, outgoing);
    for (int r = 0; r < 4; ++r) {
      if (incoming[r] !=
          std::vector<uint64_t>{static_cast<uint64_t>(r * 10 + ctx.rank())}) {
        return Status::Internal("alltoall mismatch");
      }
    }
    return Status::OK();
  });
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(CollectivesTest, ExclusiveScanAndReduce) {
  Cluster cluster(SmallCluster(4));
  Status s = cluster.Run([](ProcessorContext& ctx) -> Status {
    uint64_t value = (ctx.rank() + 1) * 10;  // 10,20,30,40
    uint64_t total = 0;
    uint64_t prefix = collectives::ExclusiveScanU64(ctx, value, &total);
    const uint64_t expected_prefix[] = {0, 10, 30, 60};
    if (prefix != expected_prefix[ctx.rank()] || total != 100) {
      return Status::Internal("scan mismatch");
    }
    auto sums = collectives::AllReduceSumU64(ctx, {value, 1});
    if (sums != std::vector<uint64_t>{100, 4}) {
      return Status::Internal("allreduce mismatch");
    }
    return Status::OK();
  });
  EXPECT_TRUE(s.ok()) << s.ToString();
}

// ----------------------------------------------------------- Global merge --

// Shared harness: every rank makes a sorted local list, merges with the
// given method, and the driver checks the distributed postconditions.
void CheckGlobalMerge(int p, MergeMethod method, size_t per_rank,
                      bool equal_sizes) {
  Cluster cluster(SmallCluster(p));
  std::vector<std::vector<uint64_t>> locals(p);
  std::vector<uint64_t> all;
  Xoshiro256 rng(p * 1000 + per_rank);
  for (int r = 0; r < p; ++r) {
    size_t len = equal_sizes ? per_rank : per_rank + r * 7;
    for (size_t i = 0; i < len; ++i) {
      locals[r].push_back(rng.NextBounded(100000));
    }
    std::sort(locals[r].begin(), locals[r].end());
    all.insert(all.end(), locals[r].begin(), locals[r].end());
  }
  std::sort(all.begin(), all.end());

  std::vector<DistributedList<uint64_t>> results(p);
  Status s = cluster.Run([&](ProcessorContext& ctx) -> Status {
    results[ctx.rank()] =
        GlobalMerge(ctx, locals[ctx.rank()], method);
    return Status::OK();
  });
  ASSERT_TRUE(s.ok()) << s.ToString();

  // Concatenated slices must equal the fully sorted union, with consistent
  // offsets and near-equal sizes.
  std::vector<uint64_t> reassembled;
  uint64_t expected_offset = 0;
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(results[r].global_offset, expected_offset) << "rank " << r;
    EXPECT_EQ(results[r].global_size, all.size());
    EXPECT_TRUE(std::is_sorted(results[r].values.begin(),
                               results[r].values.end()));
    expected_offset += results[r].values.size();
    reassembled.insert(reassembled.end(), results[r].values.begin(),
                       results[r].values.end());
  }
  EXPECT_EQ(reassembled, all);
  // Balanced within one element.
  for (int r = 0; r < p; ++r) {
    EXPECT_NEAR(static_cast<double>(results[r].values.size()),
                static_cast<double>(all.size()) / p, 1.0)
        << "rank " << r;
  }
}

TEST(BitonicMergeTest, TwoProcessors) {
  CheckGlobalMerge(2, MergeMethod::kBitonic, 64, true);
}
TEST(BitonicMergeTest, FourProcessors) {
  CheckGlobalMerge(4, MergeMethod::kBitonic, 128, true);
}
TEST(BitonicMergeTest, EightProcessors) {
  CheckGlobalMerge(8, MergeMethod::kBitonic, 256, true);
}
TEST(BitonicMergeTest, SingleProcessorIdentity) {
  CheckGlobalMerge(1, MergeMethod::kBitonic, 32, true);
}

TEST(SampleMergeTest, TwoProcessors) {
  CheckGlobalMerge(2, MergeMethod::kSample, 64, true);
}
TEST(SampleMergeTest, FourProcessors) {
  CheckGlobalMerge(4, MergeMethod::kSample, 128, true);
}
TEST(SampleMergeTest, EightProcessors) {
  CheckGlobalMerge(8, MergeMethod::kSample, 256, true);
}
TEST(SampleMergeTest, NonPowerOfTwoProcessors) {
  CheckGlobalMerge(3, MergeMethod::kSample, 100, true);
  CheckGlobalMerge(5, MergeMethod::kSample, 90, true);
  CheckGlobalMerge(7, MergeMethod::kSample, 80, true);
}
TEST(SampleMergeTest, UnequalLocalSizes) {
  CheckGlobalMerge(4, MergeMethod::kSample, 50, false);
}
TEST(SampleMergeTest, DuplicateHeavyLists) {
  Cluster cluster(SmallCluster(4));
  std::vector<DistributedList<uint64_t>> results(4);
  Status s = cluster.Run([&](ProcessorContext& ctx) -> Status {
    std::vector<uint64_t> local(100, ctx.rank() % 2);  // only values 0/1
    results[ctx.rank()] = SampleMergeBlocks(ctx, local);
    return Status::OK();
  });
  ASSERT_TRUE(s.ok());
  size_t total = 0;
  for (auto& r : results) total += r.values.size();
  EXPECT_EQ(total, 400u);
}

TEST(RebalanceTest, EqualisesSkewedDistribution) {
  Cluster cluster(SmallCluster(4));
  std::vector<DistributedList<uint64_t>> results(4);
  Status s = cluster.Run([&](ProcessorContext& ctx) -> Status {
    // Rank r holds a sorted block [1000r, 1000r + len) with wildly
    // different lengths; globally ordered by construction.
    size_t len = (ctx.rank() + 1) * (ctx.rank() + 1) * 10;  // 10,40,90,160
    std::vector<uint64_t> local(len);
    std::iota(local.begin(), local.end(), ctx.rank() * 1000);
    results[ctx.rank()] = RebalanceSorted(ctx, local);
    return Status::OK();
  });
  ASSERT_TRUE(s.ok());
  const uint64_t total = 10 + 40 + 90 + 160;
  uint64_t offset = 0;
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(results[r].global_size, total);
    EXPECT_EQ(results[r].global_offset, offset);
    offset += results[r].values.size();
    EXPECT_NEAR(static_cast<double>(results[r].values.size()), total / 4.0,
                1.0);
  }
}

TEST(BitonicMergeTest, RequiresPowerOfTwo) {
  Cluster cluster(SmallCluster(3));
  EXPECT_DEATH(
      {
        Status s = cluster.Run([](ProcessorContext& ctx) -> Status {
          std::vector<uint64_t> local{1, 2, 3};
          BitonicMergeBlocks(ctx, local);
          return Status::OK();
        });
      },
      "power-of-two");
}

// ---------------------------------------------------------- Parallel OPAQ --

struct ParallelFixture {
  std::vector<std::unique_ptr<MemoryBlockDevice>> devices;
  std::vector<TypedDataFile<uint64_t>> files;
  std::vector<Source<uint64_t>> sources;
  std::vector<uint64_t> all_data;

  explicit ParallelFixture(int p, uint64_t per_rank,
                           Distribution distribution = Distribution::kUniform) {
    for (int r = 0; r < p; ++r) {
      DatasetSpec spec;
      spec.n = per_rank;
      spec.seed = 1000 + r;
      spec.distribution = distribution;
      auto data = GenerateDataset<uint64_t>(spec);
      all_data.insert(all_data.end(), data.begin(), data.end());
      devices.push_back(std::make_unique<MemoryBlockDevice>());
      OPAQ_CHECK_OK(WriteDataset(data, devices.back().get()));
      auto file = TypedDataFile<uint64_t>::Open(devices.back().get());
      OPAQ_CHECK_OK(file.status());
      files.push_back(std::move(file).value());
    }
    for (auto& f : files) sources.push_back(Source<uint64_t>::FromFile(&f));
  }
};

class ParallelOpaqTest
    : public ::testing::TestWithParam<std::tuple<int, MergeMethod>> {};

TEST_P(ParallelOpaqTest, GuaranteesHoldAcrossClusterShapes) {
  const int p = std::get<0>(GetParam());
  const MergeMethod method = std::get<1>(GetParam());
  ParallelFixture fixture(p, 20000, Distribution::kZipf);

  Cluster cluster(SmallCluster(p));
  ParallelOpaqOptions options;
  options.config.run_size = 2000;
  options.config.samples_per_run = 100;
  options.merge_method = method;
  auto result = RunParallelOpaq(cluster, fixture.sources, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  ASSERT_EQ(result->estimates.size(), 9u);
  EXPECT_EQ(result->global_accounting.total_elements,
            static_cast<uint64_t>(p) * 20000);
  EXPECT_EQ(result->global_accounting.num_runs,
            static_cast<uint64_t>(p) * 10);

  GroundTruth<uint64_t> truth(fixture.all_data);
  for (const auto& e : result->estimates) {
    EXPECT_TRUE(BracketHolds(truth, e)) << "p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ClusterShapes, ParallelOpaqTest,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(MergeMethod::kBitonic,
                                         MergeMethod::kSample)),
    [](const auto& info) {
      return std::string("p") + std::to_string(std::get<0>(info.param)) +
             "_" + MergeMethodName(std::get<1>(info.param));
    });

TEST(ParallelOpaqTest2, NonPowerOfTwoWithSampleMerge) {
  const int p = 3;
  ParallelFixture fixture(p, 10000);
  Cluster cluster(SmallCluster(p));
  ParallelOpaqOptions options;
  options.config.run_size = 1000;
  options.config.samples_per_run = 50;
  options.merge_method = MergeMethod::kSample;
  auto result = RunParallelOpaq(cluster, fixture.sources, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  GroundTruth<uint64_t> truth(fixture.all_data);
  for (const auto& e : result->estimates) EXPECT_TRUE(BracketHolds(truth, e));
}

TEST(ParallelOpaqTest2, MatchesSequentialSampleAccounting) {
  // A 1-processor parallel run must agree exactly with the sequential path.
  ParallelFixture fixture(1, 30000);
  Cluster cluster(SmallCluster(1));
  ParallelOpaqOptions options;
  options.config.run_size = 3000;
  options.config.samples_per_run = 100;
  auto result = RunParallelOpaq(cluster, fixture.sources, options);
  ASSERT_TRUE(result.ok());

  OpaqConfig config = options.config;
  OpaqEstimator<uint64_t> sequential =
      EstimateQuantilesInMemory(fixture.all_data, config);
  for (int d = 1; d <= 9; ++d) {
    auto seq = sequential.Quantile(d / 10.0);
    const auto& par = result->estimates[d - 1];
    EXPECT_EQ(par.lower, seq.lower) << d;
    EXPECT_EQ(par.upper, seq.upper) << d;
    EXPECT_EQ(par.target_rank, seq.target_rank) << d;
  }
}

TEST(ParallelOpaqTest2, PhaseTimersPopulated) {
  const int p = 4;
  ParallelFixture fixture(p, 20000);
  Cluster cluster(SmallCluster(p));
  ParallelOpaqOptions options;
  options.config.run_size = 2000;
  options.config.samples_per_run = 200;
  auto result = RunParallelOpaq(cluster, fixture.sources, options);
  ASSERT_TRUE(result.ok());
  PhaseTimer avg = cluster.AveragedTimers();
  EXPECT_GT(avg.TotalSeconds(), 0.0);
  EXPECT_GT(avg.Seconds(kPhaseSampling), 0.0);
  EXPECT_GT(result->total_wall_seconds, 0.0);
  // Communication happened (global merge).
  EXPECT_GT(cluster.comm_stats(0).messages_sent.load(), 0u);
}

TEST(ParallelOpaqTest2, RejectsWrongFileCount) {
  ParallelFixture fixture(2, 1000);
  Cluster cluster(SmallCluster(4));
  ParallelOpaqOptions options;
  options.config.run_size = 100;
  options.config.samples_per_run = 10;
  auto result = RunParallelOpaq(cluster, fixture.sources, options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace opaq
