// Tests for the include/opaq/ public facade: the unified Source<K> handle,
// the Engine<K> front door, the batched QuerySession API, and the app
// builders retrofitted onto it — plus the QuantileEstimate::point()
// regression (doc says midpoint; behavior must agree).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>
#include <vector>

#include "core/sketch_io.h"
#include "data/dataset.h"
#include "io/block_device.h"
#include "io/striped_data_file.h"
#include "io/tempdir.h"
#include "metrics/ground_truth.h"
#include "metrics/rer.h"
#include "opaq/apps.h"
#include "opaq/engine.h"
#include "opaq/opaq.h"
#include "opaq/query.h"
#include "opaq/source.h"

namespace opaq {
namespace {

using Key = uint64_t;
using Request = QueryRequest<Key>;

std::vector<Key> TestData(uint64_t n, uint64_t seed = 7,
                          Distribution dist = Distribution::kZipf) {
  DatasetSpec spec;
  spec.n = n;
  spec.seed = seed;
  spec.distribution = dist;
  return GenerateDataset<Key>(spec);
}

OpaqConfig SmallConfig() {
  OpaqConfig config;
  config.run_size = 2000;
  config.samples_per_run = 200;
  return config;
}

std::vector<uint8_t> Serialize(const SampleList<Key>& list) {
  MemoryBlockDevice out;
  OPAQ_CHECK_OK(SaveSampleList(list, &out));
  auto size = out.Size();
  OPAQ_CHECK_OK(size.status());
  std::vector<uint8_t> bytes(*size);
  OPAQ_CHECK_OK(out.ReadAt(0, bytes.data(), bytes.size()));
  return bytes;
}

// ---------------------------------------------------------------- Source ----

TEST(SourceTest, AllFactoriesExposeTheSameLogicalRuns) {
  const std::vector<Key> data = TestData(9137);  // ragged run tail

  // File-backed.
  MemoryBlockDevice device;
  OPAQ_CHECK_OK(WriteDataset(data, &device));
  auto file = TypedDataFile<Key>::Open(&device);
  ASSERT_TRUE(file.ok());
  Source<Key> from_file = Source<Key>::FromFile(&*file);

  // Striped across 3 devices with a chunk that does not divide the run.
  std::vector<std::unique_ptr<MemoryBlockDevice>> stripe_devices;
  std::vector<BlockDevice*> raw;
  for (int s = 0; s < 3; ++s) {
    stripe_devices.push_back(std::make_unique<MemoryBlockDevice>());
    raw.push_back(stripe_devices.back().get());
  }
  auto striped = WriteStriped(data, raw, 700);
  ASSERT_TRUE(striped.ok());
  Source<Key> from_striped = Source<Key>::FromFile(&*striped);
  EXPECT_EQ(from_striped.stripes(), 3u);

  // In-memory and provider-borrowing.
  Source<Key> from_vector = Source<Key>::FromVector(data);
  MemoryRunProvider<Key> provider(data);
  Source<Key> from_provider = Source<Key>::FromProvider(&provider);

  const Source<Key>* sources[] = {&from_file, &from_striped, &from_vector,
                                  &from_provider};
  ReadOptions options;
  options.run_size = 512;
  for (const Source<Key>* source : sources) {
    EXPECT_EQ(source->size(), data.size());
    std::vector<Key> replay;
    std::vector<Key> buffer;
    auto runs = source->OpenRuns(options);
    while (true) {
      auto more = runs->NextRun(&buffer);
      ASSERT_TRUE(more.ok());
      if (!*more) break;
      EXPECT_LE(buffer.size(), options.run_size);
      replay.insert(replay.end(), buffer.begin(), buffer.end());
    }
    EXPECT_EQ(replay, data);
  }
}

TEST(SourceTest, FromSpecMatchesGenerateDataset) {
  DatasetSpec spec;
  spec.n = 4096;
  spec.distribution = Distribution::kNormal;
  spec.seed = 11;
  Source<Key> source = Source<Key>::FromSpec(spec);
  EXPECT_EQ(source.size(), spec.n);
  ReadOptions options;
  std::vector<Key> buffer;
  auto runs = source.OpenRuns(options);
  ASSERT_TRUE(*runs->NextRun(&buffer));
  EXPECT_EQ(buffer, GenerateDataset<Key>(spec));
}

TEST(SourceTest, OpenOwnsRealFiles) {
  auto dir = TempDir::Make("opaq-facade-test");
  ASSERT_TRUE(dir.ok());
  const std::vector<Key> data = TestData(5000);
  {
    auto device = FileBlockDevice::Make(dir->FilePath("d.opaq"),
                                        FileBlockDevice::Mode::kCreate);
    ASSERT_TRUE(device.ok());
    OPAQ_CHECK_OK(WriteDataset(data, device->get()));
    OPAQ_CHECK_OK((*device)->Sync());
  }  // devices closed; Source::Open must own its whole chain
  auto source = Source<Key>::Open(dir->FilePath("d.opaq"));
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  EXPECT_EQ(source->size(), data.size());

  auto session = Engine<Key>(SmallConfig(), *source).Build();
  ASSERT_TRUE(session.ok());
  GroundTruth<Key> truth(data);
  EXPECT_TRUE(BracketHolds(truth, session->Quantile(0.5)));

  auto missing = Source<Key>::Open(dir->FilePath("nope.opaq"));
  EXPECT_FALSE(missing.ok());
}

TEST(SourceTest, OpenStripedOwnsRealFiles) {
  auto dir = TempDir::Make("opaq-facade-striped");
  ASSERT_TRUE(dir.ok());
  const std::vector<Key> data = TestData(6000);
  std::vector<std::string> paths;
  {
    std::vector<std::unique_ptr<FileBlockDevice>> devices;
    std::vector<BlockDevice*> raw;
    for (int s = 0; s < 2; ++s) {
      paths.push_back(dir->FilePath("d.opaq.s" + std::to_string(s)));
      auto device =
          FileBlockDevice::Make(paths.back(), FileBlockDevice::Mode::kCreate);
      ASSERT_TRUE(device.ok());
      devices.push_back(std::move(device).value());
      raw.push_back(devices.back().get());
    }
    ASSERT_TRUE(WriteStriped(data, raw, 512).ok());
    for (auto& device : devices) OPAQ_CHECK_OK(device->Sync());
  }
  auto source = Source<Key>::OpenStriped(paths);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  EXPECT_EQ(source->size(), data.size());
  EXPECT_EQ(source->stripes(), 2u);

  auto session = Engine<Key>(SmallConfig(), *source).Build();
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(session->total_elements(), data.size());
}

// ---------------------------------------------------------------- Engine ----

TEST(EngineTest, BuildMatchesClassicSketchBitForBit) {
  const std::vector<Key> data = TestData(20000);
  OpaqConfig config = SmallConfig();

  auto session = Engine<Key>(config, Source<Key>::FromVector(data)).Build();
  ASSERT_TRUE(session.ok());

  OpaqEstimator<Key> classic = EstimateQuantilesInMemory(data, config);
  EXPECT_EQ(Serialize(session->sample_list()),
            Serialize(classic.sample_list()));
}

TEST(EngineTest, MultiShardBuildEqualsMergedShardLists) {
  OpaqConfig config = SmallConfig();
  std::vector<Key> shard_a = TestData(8000, 1);
  std::vector<Key> shard_b = TestData(6500, 2);  // ragged shard tail
  std::vector<Key> shard_c = TestData(4000, 3, Distribution::kUniform);

  auto session = Engine<Key>(config, std::vector<Source<Key>>{
                                         Source<Key>::FromVector(shard_a),
                                         Source<Key>::FromVector(shard_b),
                                         Source<Key>::FromVector(shard_c)})
                     .Build();
  ASSERT_TRUE(session.ok());

  auto merged = SampleList<Key>::Merge(
      EstimateQuantilesInMemory(shard_a, config).sample_list(),
      EstimateQuantilesInMemory(shard_b, config).sample_list());
  ASSERT_TRUE(merged.ok());
  auto merged2 = SampleList<Key>::Merge(
      *merged, EstimateQuantilesInMemory(shard_c, config).sample_list());
  ASSERT_TRUE(merged2.ok());
  EXPECT_EQ(Serialize(session->sample_list()), Serialize(*merged2));

  // Aligned shards (multiples of run_size) additionally equal the one-shot
  // sequential pass over the concatenation.
  std::vector<Key> all = TestData(4000, 8);
  std::vector<Key> left(all.begin(), all.begin() + 2000);
  std::vector<Key> right(all.begin() + 2000, all.end());
  auto sharded = Engine<Key>(config, std::vector<Source<Key>>{
                                         Source<Key>::FromVector(left),
                                         Source<Key>::FromVector(right)})
                     .Build();
  ASSERT_TRUE(sharded.ok());
  auto sequential = Engine<Key>(config, Source<Key>::FromVector(all)).Build();
  ASSERT_TRUE(sequential.ok());
  EXPECT_EQ(Serialize(sharded->sample_list()),
            Serialize(sequential->sample_list()));
}

TEST(EngineTest, StatsAreFilled) {
  OpaqConfig config = SmallConfig();
  Engine<Key> engine(config, std::vector<Source<Key>>{
                                 Source<Key>::FromVector(TestData(10000, 4)),
                                 Source<Key>::FromVector(TestData(9000, 5))});
  auto session = engine.Build();
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(engine.stats().shards, 2u);
  EXPECT_EQ(engine.stats().elements, 19000u);
  EXPECT_EQ(engine.stats().runs, 5u + 5u);  // ceil(10000/2000) + ceil(9000/2000)
  EXPECT_GT(engine.stats().seconds, 0);
}

TEST(EngineTest, ErrorsAreStatusesNotAborts) {
  // Bad config: samples_per_run does not divide run_size.
  OpaqConfig bad;
  bad.run_size = 1000;
  bad.samples_per_run = 300;
  auto invalid =
      Engine<Key>(bad, Source<Key>::FromVector(TestData(100))).Build();
  EXPECT_FALSE(invalid.ok());
  EXPECT_EQ(invalid.status().code(), StatusCode::kInvalidArgument);

  // Too little data for even one sample: n < subrun size.
  auto tiny = Engine<Key>(SmallConfig(),
                          Source<Key>::FromVector(std::vector<Key>{1, 2, 3}))
                  .Build();
  EXPECT_FALSE(tiny.ok());
  EXPECT_EQ(tiny.status().code(), StatusCode::kFailedPrecondition);

  // No sources at all.
  auto empty =
      Engine<Key>(SmallConfig(), std::vector<Source<Key>>{}).Build();
  EXPECT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------- QuerySession ----

TEST(QuerySessionTest, BatchedQueryAnswersEveryKind) {
  const std::vector<Key> data = TestData(30000);
  GroundTruth<Key> truth(data);
  auto session =
      Engine<Key>(SmallConfig(), Source<Key>::FromVector(data)).Build();
  ASSERT_TRUE(session.ok());

  auto results = session->Query({
      Request::Quantile(0.5, /*exact=*/true),
      Request::EquiQuantiles(10),
      Request::RankOf(data[17]),
      Request::QuantileByRank(12345),
      Request::Quantile(0.99, /*exact=*/true),
  });
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->results.size(), 5u);
  EXPECT_EQ(results->total_elements, data.size());
  EXPECT_EQ(results->max_rank_error, session->max_rank_error());

  // Quantile brackets hold and exact values are the true order statistics.
  const auto& median = results->results[0];
  ASSERT_EQ(median.estimates.size(), 1u);
  EXPECT_TRUE(BracketHolds(truth, median.estimates[0]));
  ASSERT_EQ(median.exact.size(), 1u);
  EXPECT_EQ(median.exact[0], truth.Quantile(0.5));
  ASSERT_EQ(results->results[4].exact.size(), 1u);
  EXPECT_EQ(results->results[4].exact[0], truth.Quantile(0.99));

  // Equi-quantiles: 9 dectile brackets, all holding, no exact requested.
  const auto& dectiles = results->results[1];
  ASSERT_EQ(dectiles.estimates.size(), 9u);
  EXPECT_TRUE(dectiles.exact.empty());
  for (int d = 1; d <= 9; ++d) {
    EXPECT_TRUE(BracketHolds(truth, dectiles.estimates[d - 1])) << d;
  }

  // Rank bracket contains the true rank.
  const auto& rank = results->results[2];
  EXPECT_LE(rank.rank.min_rank_le, truth.RankLe(data[17]));
  EXPECT_GE(rank.rank.max_rank_le, truth.RankLe(data[17]));

  // Rank-targeted quantile bracket contains the rank-12345 element.
  const auto& by_rank = results->results[3];
  ASSERT_EQ(by_rank.estimates.size(), 1u);
  EXPECT_LE(by_rank.estimates[0].lower, truth.ValueAtRank(12345));
  EXPECT_GE(by_rank.estimates[0].upper, truth.ValueAtRank(12345));
}

TEST(QuerySessionTest, BatchedExactRequestsShareOneDataPass) {
  const std::vector<Key> data = TestData(40000);
  MemoryBlockDevice device;
  OPAQ_CHECK_OK(WriteDataset(data, &device));
  auto file = TypedDataFile<Key>::Open(&device);
  ASSERT_TRUE(file.ok());

  auto session =
      Engine<Key>(SmallConfig(), Source<Key>::FromFile(&*file)).Build();
  ASSERT_TRUE(session.ok());

  const uint64_t reads_before =
      device.stats().read_requests.load(std::memory_order_relaxed);
  auto results = session->Query({
      Request::Quantile(0.1, /*exact=*/true),
      Request::Quantile(0.5, /*exact=*/true),
      Request::Quantile(0.9, /*exact=*/true),
      Request::EquiQuantiles(4, /*exact=*/true),
  });
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  const uint64_t reads_after =
      device.stats().read_requests.load(std::memory_order_relaxed);

  // Six exact values came back correct...
  GroundTruth<Key> truth(data);
  EXPECT_EQ(results->results[1].exact[0], truth.Quantile(0.5));
  ASSERT_EQ(results->results[3].exact.size(), 3u);
  EXPECT_EQ(results->results[3].exact[1], truth.Quantile(0.5));
  // ...for the read cost of ONE pass (one request per run), not six.
  const uint64_t runs =
      (data.size() + SmallConfig().run_size - 1) / SmallConfig().run_size;
  EXPECT_EQ(reads_after - reads_before, runs);
}

TEST(QuerySessionTest, QueryValidatesRequests) {
  auto session = Engine<Key>(SmallConfig(),
                             Source<Key>::FromVector(TestData(10000)))
                     .Build();
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(session->Query({Request::Quantile(0.0)}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(session->Query({Request::Quantile(1.5)}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(session->Query({Request::EquiQuantiles(1)}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(session->Query({Request::QuantileByRank(0)}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(session->Query({Request::QuantileByRank(10001)}).status().code(),
            StatusCode::kInvalidArgument);
  // exact recovery is a quantile-flavored ask; on a rank request it must
  // be rejected, not silently dropped.
  Request exact_rank = Request::RankOf(Key{42});
  exact_rank.exact = true;
  EXPECT_EQ(session->Query({exact_rank}).status().code(),
            StatusCode::kInvalidArgument);
  // An empty batch is fine.
  auto empty = session->Query({});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->results.empty());

  // A session over an empty sample list (e.g. a loaded sketch of a dataset
  // smaller than one sub-run) answers with a Status, not a CHECK-abort.
  QuerySession<Key> sampleless{SampleList<Key>()};
  EXPECT_EQ(sampleless.Query({Request::Quantile(0.5)}).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(QuerySessionTest, ExactBudgetKnobUnlocksDuplicateHeavyData) {
  // Ten distinct values over 10k elements: every bracket holds ~n/10
  // duplicates, far beyond the default 4*q*max_rank_error budget. The
  // default must fail with ResourceExhausted; raising the session budget
  // must recover the exact value.
  std::vector<Key> data(10000);
  for (size_t i = 0; i < data.size(); ++i) data[i] = i % 10;
  OpaqConfig config = SmallConfig();
  auto session = Engine<Key>(config, Source<Key>::FromVector(data)).Build();
  ASSERT_TRUE(session.ok());
  auto starved = session->ExactQuantile(0.5);
  EXPECT_EQ(starved.status().code(), StatusCode::kResourceExhausted);
  session->set_exact_memory_budget(data.size());
  auto fed = session->ExactQuantile(0.5);
  ASSERT_TRUE(fed.ok()) << fed.status().ToString();
  std::vector<Key> sorted = data;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(*fed, sorted[data.size() / 2 - 1]);
}

TEST(QuerySessionTest, MultiShardExactMatchesSequentialSecondPass) {
  // The concurrent per-shard exact pass must answer exactly like one
  // sequential scan over the concatenation (below-counts add, kept sets
  // concatenate, selection is order-insensitive).
  OpaqConfig config = SmallConfig();
  std::vector<Key> shard_a = TestData(9000, 11);
  std::vector<Key> shard_b = TestData(7000, 12, Distribution::kUniform);
  std::vector<Key> shard_c = TestData(5000, 13);
  std::vector<Key> all = shard_a;
  all.insert(all.end(), shard_b.begin(), shard_b.end());
  all.insert(all.end(), shard_c.begin(), shard_c.end());

  auto session = Engine<Key>(config, std::vector<Source<Key>>{
                                         Source<Key>::FromVector(shard_a),
                                         Source<Key>::FromVector(shard_b),
                                         Source<Key>::FromVector(shard_c)})
                     .Build();
  ASSERT_TRUE(session.ok());
  auto batch = session->Query({
      Request::Quantile(0.25, /*exact=*/true),
      Request::Quantile(0.5, /*exact=*/true),
      Request::Quantile(0.9, /*exact=*/true),
  });
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();

  std::vector<Key> sorted = all;
  std::sort(sorted.begin(), sorted.end());
  const uint64_t n = sorted.size();
  const double phis[] = {0.25, 0.5, 0.9};
  for (size_t i = 0; i < 3; ++i) {
    const uint64_t psi = static_cast<uint64_t>(
        std::ceil(phis[i] * static_cast<double>(n)));
    EXPECT_EQ(batch->results[i].exact[0], sorted[psi - 1]) << phis[i];
  }
}

TEST(QuerySessionTest, ExactWithoutSourcesFailsCleanly) {
  // A session rebuilt from a bare sample list (the persisted-sketch path)
  // answers estimates but refuses exact queries.
  auto built = Engine<Key>(SmallConfig(),
                           Source<Key>::FromVector(TestData(10000)))
                   .Build();
  ASSERT_TRUE(built.ok());
  QuerySession<Key> detached(built->sample_list());
  EXPECT_TRUE(detached.Query({Request::Quantile(0.5)}).ok());
  auto exact = detached.Query({Request::Quantile(0.5, /*exact=*/true)});
  EXPECT_EQ(exact.status().code(), StatusCode::kFailedPrecondition);
}

// ------------------------------------------------------------------ Apps ----

TEST(FacadeAppsTest, BuildersMatchClassicConstruction) {
  const std::vector<Key> data = TestData(25000);
  OpaqConfig config = SmallConfig();
  auto session = Engine<Key>(config, Source<Key>::FromVector(data)).Build();
  ASSERT_TRUE(session.ok());
  OpaqEstimator<Key> classic = EstimateQuantilesInMemory(data, config);

  auto histogram = BuildEquiDepthHistogram(*session, 10);
  ASSERT_TRUE(histogram.ok());
  auto classic_histogram = EquiDepthHistogram<Key>::Build(classic, 10);
  ASSERT_EQ(histogram->boundaries().size(),
            classic_histogram.boundaries().size());
  for (size_t i = 0; i < histogram->boundaries().size(); ++i) {
    EXPECT_EQ(histogram->boundaries()[i].lower,
              classic_histogram.boundaries()[i].lower);
    EXPECT_EQ(histogram->boundaries()[i].upper,
              classic_histogram.boundaries()[i].upper);
  }
  EXPECT_EQ(histogram->max_rank_error(), classic_histogram.max_rank_error());

  auto partitioner = BuildRangePartitioner(*session, 8);
  ASSERT_TRUE(partitioner.ok());
  EXPECT_EQ(partitioner->splitters(),
            RangePartitioner<Key>::Build(classic, 8).splitters());

  auto selectivity =
      EstimateRangeSelectivity(*session, Key{10}, Key{100000});
  ASSERT_TRUE(selectivity.ok());
  SelectivityEstimate classic_selectivity =
      EstimateRangeSelectivity(classic, Key{10}, Key{100000});
  EXPECT_EQ(selectivity->min_count, classic_selectivity.min_count);
  EXPECT_EQ(selectivity->max_count, classic_selectivity.max_count);

  EXPECT_EQ(BuildEquiDepthHistogram(*session, 1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(BuildRangePartitioner(*session, 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      EstimateRangeSelectivity(*session, Key{10}, Key{5}).status().code(),
      StatusCode::kInvalidArgument);
}

// ------------------------------------------------ Deprecated wrappers ----

// The pre-facade entry points survive as deprecated one-line wrappers; this
// is the one place that may still call them, proving they forward to the
// same results the facade produces.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif
TEST(DeprecatedWrapperTest, OldEntryPointsForwardToTheFacadePath) {
  const std::vector<Key> data = TestData(9000);
  MemoryBlockDevice device;
  OPAQ_CHECK_OK(WriteDataset(data, &device));
  auto file = TypedDataFile<Key>::Open(&device);
  ASSERT_TRUE(file.ok());
  OpaqConfig config = SmallConfig();

  OpaqSketch<Key> via_wrapper(config);
  ASSERT_TRUE(via_wrapper.ConsumeFile(&*file).ok());
  OpaqSketch<Key> via_provider(config);
  ASSERT_TRUE(via_provider.Consume(FileRunProvider<Key>(&*file)).ok());
  SampleList<Key> wrapper_list = via_wrapper.FinalizeSampleList();
  SampleList<Key> provider_list = via_provider.FinalizeSampleList();
  EXPECT_EQ(Serialize(wrapper_list), Serialize(provider_list));

  auto old_reader = MakeRunSource<Key>(&*file, config);
  auto new_reader = FileRunProvider<Key>(&*file).OpenRuns(
      config.read_options());
  std::vector<Key> old_replay, new_replay, buffer;
  while (*old_reader->NextRun(&buffer)) {
    old_replay.insert(old_replay.end(), buffer.begin(), buffer.end());
  }
  while (*new_reader->NextRun(&buffer)) {
    new_replay.insert(new_replay.end(), buffer.begin(), buffer.end());
  }
  EXPECT_EQ(old_replay, new_replay);

  OpaqEstimator<Key> estimator(std::move(provider_list));
  auto median = estimator.Quantile(0.5);
  auto old_exact = ExactQuantileSecondPass(&*file, median, config.run_size);
  ASSERT_TRUE(old_exact.ok());
  auto new_exact = ExactQuantileSecondPass(FileRunProvider<Key>(&*file),
                                           median, config.read_options());
  ASSERT_TRUE(new_exact.ok());
  EXPECT_EQ(*old_exact, *new_exact);
}
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif

// -------------------------------------------- point() doc/behavior fix ----

TEST(QuantileEstimateTest, PointIsTheBracketMidpoint) {
  // Regression for the doc/behavior mismatch: point() promised a
  // "midpoint-style" estimate but returned `lower`. It must now be the
  // midpoint of the certified bracket.
  std::vector<Key> data(50000);
  std::iota(data.begin(), data.end(), 0);
  auto session =
      Engine<Key>(SmallConfig(), Source<Key>::FromVector(data)).Build();
  ASSERT_TRUE(session.ok());
  bool saw_wide_bracket = false;
  for (int d = 1; d <= 9; ++d) {
    QuantileEstimate<Key> e = session->Quantile(d / 10.0);
    EXPECT_EQ(e.point(), e.lower + (e.upper - e.lower) / 2) << d;
    EXPECT_GE(e.point(), e.lower);
    EXPECT_LE(e.point(), e.upper);
    if (e.upper > e.lower + 1) saw_wide_bracket = true;
  }
  // The test only bites if some bracket is wide enough to distinguish
  // midpoint from lower.
  EXPECT_TRUE(saw_wide_bracket);

  // A clamped bound falls back to the certified side.
  QuantileEstimate<Key> clamped;
  clamped.lower = 10;
  clamped.upper = 20;
  clamped.lower_index = 1;
  clamped.upper_index = 2;
  clamped.lower_clamped = true;
  EXPECT_EQ(clamped.point(), 20u);
  clamped.lower_clamped = false;
  clamped.upper_clamped = true;
  EXPECT_EQ(clamped.point(), 10u);
  clamped.upper_clamped = false;
  EXPECT_EQ(clamped.point(), 15u);
  // Both bounds clamped: neither side certifies, so point() falls back to
  // the midpoint rather than preferring one uncertified bound.
  clamped.lower_clamped = true;
  clamped.upper_clamped = true;
  EXPECT_EQ(clamped.point(), 15u);

  // Signed keys whose bracket spans more than half the domain: the naive
  // upper - lower overflows int64_t (UB); BracketMidpoint must not.
  QuantileEstimate<int64_t> wide;
  wide.lower = -6000000000000000000LL;
  wide.upper = 6000000000000000000LL;
  wide.lower_index = 1;
  wide.upper_index = 2;
  EXPECT_EQ(wide.point(), 0);
  wide.lower = -3;
  wide.upper = 8;
  EXPECT_EQ(wide.point(), 2);
}

}  // namespace
}  // namespace opaq
