// Unit tests for src/data: Zipf sampler and dataset generators.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <unordered_map>

#include "data/dataset.h"
#include "data/zipf.h"
#include "io/block_device.h"

namespace opaq {
namespace {

// ------------------------------------------------------------------ Zipf --

TEST(ZipfSamplerTest, StaysInUniverse) {
  Xoshiro256 rng(1);
  ZipfSampler sampler(0.8, 1000);
  for (int i = 0; i < 10000; ++i) {
    uint64_t k = sampler.Sample(rng);
    ASSERT_GE(k, 1u);
    ASSERT_LE(k, 1000u);
  }
}

TEST(ZipfSamplerTest, ThetaZeroIsUniform) {
  Xoshiro256 rng(2);
  ZipfSampler sampler(0.0, 10);
  std::map<uint64_t, int> counts;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[sampler.Sample(rng)];
  for (const auto& [k, c] : counts) {
    EXPECT_GT(c, kDraws / 10 * 0.9) << "rank " << k;
    EXPECT_LT(c, kDraws / 10 * 1.1) << "rank " << k;
  }
}

TEST(ZipfSamplerTest, FrequenciesMatchPowerLaw) {
  // P(k) ∝ 1/k^θ: the ratio of counts of rank 1 to rank 8 should be ~8^θ.
  Xoshiro256 rng(3);
  const double theta = 1.0;
  ZipfSampler sampler(theta, 1000);
  std::unordered_map<uint64_t, int> counts;
  constexpr int kDraws = 400000;
  for (int i = 0; i < kDraws; ++i) ++counts[sampler.Sample(rng)];
  const double ratio = static_cast<double>(counts[1]) / counts[8];
  EXPECT_NEAR(ratio, std::pow(8.0, theta), std::pow(8.0, theta) * 0.15);
}

TEST(ZipfSamplerTest, HigherThetaIsMoreSkewed) {
  Xoshiro256 rng(4);
  ZipfSampler mild(0.14, 1000);   // paper's z = 0.86
  ZipfSampler heavy(1.0, 1000);
  int mild_top = 0, heavy_top = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    if (mild.Sample(rng) <= 10) ++mild_top;
    if (heavy.Sample(rng) <= 10) ++heavy_top;
  }
  EXPECT_GT(heavy_top, mild_top * 2);
}

TEST(ZipfSamplerTest, PaperParameterMapping) {
  ZipfSampler z = ZipfSampler::FromPaperParameter(0.86, 100);
  EXPECT_NEAR(z.theta(), 0.14, 1e-12);
  ZipfSampler uniform = ZipfSampler::FromPaperParameter(1.0, 100);
  EXPECT_DOUBLE_EQ(uniform.theta(), 0.0);
}

TEST(ZipfSamplerTest, UniverseOfOneAlwaysReturnsOne) {
  Xoshiro256 rng(5);
  ZipfSampler sampler(0.5, 1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.Sample(rng), 1u);
}

TEST(ZipfSamplerTest, DeterministicGivenSeed) {
  ZipfSampler sampler(0.7, 500);
  Xoshiro256 a(9), b(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(sampler.Sample(a), sampler.Sample(b));
  }
}

// ------------------------------------------------------------- Generators --

TEST(DatasetTest, GeneratesRequestedSize) {
  for (Distribution d :
       {Distribution::kUniform, Distribution::kZipf, Distribution::kNormal,
        Distribution::kSequential, Distribution::kReverseSequential,
        Distribution::kConstant, Distribution::kSawtooth}) {
    DatasetSpec spec;
    spec.n = 10000;
    spec.distribution = d;
    auto data = GenerateDataset<uint64_t>(spec);
    EXPECT_EQ(data.size(), 10000u) << DistributionName(d);
  }
}

TEST(DatasetTest, DeterministicAcrossCalls) {
  DatasetSpec spec;
  spec.n = 5000;
  spec.distribution = Distribution::kUniform;
  spec.seed = 77;
  auto a = GenerateDataset<uint64_t>(spec);
  auto b = GenerateDataset<uint64_t>(spec);
  EXPECT_EQ(a, b);
}

TEST(DatasetTest, SeedChangesData) {
  DatasetSpec spec;
  spec.n = 5000;
  spec.seed = 1;
  auto a = GenerateDataset<uint64_t>(spec);
  spec.seed = 2;
  auto b = GenerateDataset<uint64_t>(spec);
  EXPECT_NE(a, b);
}

TEST(DatasetTest, UniformDuplicateFractionHonoured) {
  // Paper §2.4: n/10 duplicates. With 64-bit uniform draws, base values are
  // (essentially) distinct, so duplicates == n - #distinct ≈ n/10.
  DatasetSpec spec;
  spec.n = 100000;
  spec.distribution = Distribution::kUniform;
  spec.duplicate_fraction = 0.1;
  auto data = GenerateDataset<uint64_t>(spec);
  std::set<uint64_t> distinct(data.begin(), data.end());
  const double dup_fraction =
      1.0 - static_cast<double>(distinct.size()) / data.size();
  EXPECT_NEAR(dup_fraction, 0.1, 0.005);
}

TEST(DatasetTest, ZeroDuplicateFractionGivesDistinct) {
  DatasetSpec spec;
  spec.n = 50000;
  spec.distribution = Distribution::kUniform;
  spec.duplicate_fraction = 0.0;
  auto data = GenerateDataset<uint64_t>(spec);
  std::set<uint64_t> distinct(data.begin(), data.end());
  EXPECT_EQ(distinct.size(), data.size());
}

TEST(DatasetTest, ZipfIsSkewedTowardSmallValues) {
  DatasetSpec spec;
  spec.n = 100000;
  spec.distribution = Distribution::kZipf;
  spec.zipf_z = 0.5;  // strong skew in paper convention
  auto data = GenerateDataset<uint64_t>(spec);
  uint64_t below = 0;
  for (uint64_t v : data) {
    if (v <= spec.n / 100) ++below;  // smallest 1% of the universe
  }
  // With theta=0.5 and universe=n, far more than 1% of mass is at the head.
  EXPECT_GT(below, data.size() / 20);
}

TEST(DatasetTest, ZipfUniverseControlsDistinctValues) {
  DatasetSpec spec;
  spec.n = 50000;
  spec.distribution = Distribution::kZipf;
  spec.zipf_universe = 100;
  auto data = GenerateDataset<uint64_t>(spec);
  std::set<uint64_t> distinct(data.begin(), data.end());
  EXPECT_LE(distinct.size(), 100u);
  for (uint64_t v : data) {
    ASSERT_GE(v, 1u);
    ASSERT_LE(v, 100u);
  }
}

TEST(DatasetTest, ScrambledZipfSpreadsValues) {
  DatasetSpec spec;
  spec.n = 50000;
  spec.distribution = Distribution::kZipf;
  spec.zipf_z = 0.5;
  spec.scramble_zipf_values = true;
  auto data = GenerateDataset<uint64_t>(spec);
  // The most frequent value should no longer be near the bottom of the
  // universe with overwhelming probability.
  std::unordered_map<uint64_t, int> counts;
  for (uint64_t v : data) ++counts[v];
  uint64_t mode = 0;
  int best = 0;
  for (auto& [v, c] : counts) {
    if (c > best) {
      best = c;
      mode = v;
    }
  }
  EXPECT_GT(best, 50);       // still heavily duplicated
  EXPECT_GT(mode, 1000u);    // but its value is scattered away from rank 1
}

TEST(DatasetTest, SequentialIsSortedDistinct) {
  DatasetSpec spec;
  spec.n = 1000;
  spec.distribution = Distribution::kSequential;
  auto data = GenerateDataset<uint64_t>(spec);
  EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
  std::set<uint64_t> distinct(data.begin(), data.end());
  EXPECT_EQ(distinct.size(), data.size());
}

TEST(DatasetTest, ReverseSequentialIsReverseSorted) {
  DatasetSpec spec;
  spec.n = 1000;
  spec.distribution = Distribution::kReverseSequential;
  auto data = GenerateDataset<uint64_t>(spec);
  EXPECT_TRUE(std::is_sorted(data.rbegin(), data.rend()));
}

TEST(DatasetTest, ConstantIsAllEqual) {
  DatasetSpec spec;
  spec.n = 100;
  spec.distribution = Distribution::kConstant;
  auto data = GenerateDataset<uint64_t>(spec);
  for (uint64_t v : data) EXPECT_EQ(v, data[0]);
}

TEST(DatasetTest, SawtoothRepeatsPeriodically) {
  DatasetSpec spec;
  spec.n = 4096;
  spec.distribution = Distribution::kSawtooth;
  auto data = GenerateDataset<uint64_t>(spec);
  for (size_t i = 0; i + 1024 < data.size(); ++i) {
    ASSERT_EQ(data[i], data[i + 1024]);
  }
}

TEST(DatasetTest, NormalIsCentred) {
  DatasetSpec spec;
  spec.n = 100000;
  spec.distribution = Distribution::kNormal;
  spec.duplicate_fraction = 0.0;
  auto data = GenerateDataset<double>(spec);
  double sum = 0;
  for (double v : data) sum += v;
  EXPECT_NEAR(sum / data.size(), 0.5, 0.01);
}

TEST(DatasetTest, FloatKeysInUnitInterval) {
  DatasetSpec spec;
  spec.n = 10000;
  spec.distribution = Distribution::kUniform;
  auto data = GenerateDataset<double>(spec);
  for (double v : data) {
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(DatasetTest, WriteDatasetRoundTrips) {
  DatasetSpec spec;
  spec.n = 12345;
  spec.distribution = Distribution::kZipf;
  auto data = GenerateDataset<uint64_t>(spec);
  MemoryBlockDevice dev;
  ASSERT_TRUE(WriteDataset(data, &dev).ok());
  auto file = TypedDataFile<uint64_t>::Open(&dev);
  ASSERT_TRUE(file.ok());
  auto back = file->ReadAll();
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST(DatasetTest, GenerateToDeviceMatchesInMemory) {
  DatasetSpec spec;
  spec.n = 5000;
  spec.distribution = Distribution::kUniform;
  MemoryBlockDevice dev;
  ASSERT_TRUE(GenerateDatasetToDevice<uint64_t>(spec, &dev).ok());
  auto file = TypedDataFile<uint64_t>::Open(&dev);
  ASSERT_TRUE(file.ok());
  auto back = file->ReadAll();
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, GenerateDataset<uint64_t>(spec));
}

TEST(DatasetTest, ToStringMentionsDistribution) {
  DatasetSpec spec;
  spec.n = 10;
  spec.distribution = Distribution::kZipf;
  EXPECT_NE(spec.ToString().find("zipf"), std::string::npos);
  spec.distribution = Distribution::kUniform;
  EXPECT_NE(spec.ToString().find("uniform"), std::string::npos);
}

}  // namespace
}  // namespace opaq
