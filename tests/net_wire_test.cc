// Wire-protocol codec tests: CRC correctness, frame round trips, rejection
// of truncation/corruption/foreign traffic, and the committed golden byte
// streams (`tests/golden/wire_v1.bin` .. `wire_v5.bin`) that pin frame
// formats v1 through v5 — if the header layout, op codes, CRC polynomial
// or payload encodings ever drift, these fail in tier-1 instead of
// silently orphaning every deployed node.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <fstream>
#include <iterator>
#include <vector>

#include "io/extent.h"
#include "net/wire.h"
#include "net/wire_compute.h"
#include "net/wire_query.h"
#include "net/wire_stats.h"

namespace opaq {
namespace {

TEST(Crc32Test, KnownAnswers) {
  // The classic CRC-32 (IEEE 802.3) check value.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0x00000000u);
  EXPECT_EQ(Crc32("a", 1), 0xE8B7BE43u);
}

TEST(WireFrameTest, HeaderLayoutIsPinned) {
  static_assert(sizeof(WireFrameHeader) == 16);
  static_assert(offsetof(WireFrameHeader, magic) == 0);
  static_assert(offsetof(WireFrameHeader, version) == 4);
  static_assert(offsetof(WireFrameHeader, op) == 6);
  static_assert(offsetof(WireFrameHeader, payload_len) == 8);
  static_assert(offsetof(WireFrameHeader, payload_crc) == 12);
  static_assert(sizeof(WireDatasetInfo) == 24);
  static_assert(sizeof(WireReadRange) == 16);
  EXPECT_EQ(WireFrameHeader::kMagic, 0x4e51504fu);
  EXPECT_EQ(kWireVersion, 1);
}

TEST(WireFrameTest, V2LayoutIsPinned) {
  EXPECT_EQ(kComputeWireVersion, 2);
  static_assert(sizeof(WireHello) == 4);
  static_assert(sizeof(WireSampleRunsRequest) == 40);
  static_assert(sizeof(WireSampleListHeader) == 40);
  static_assert(sizeof(WireExactPassRequest) == 32);
  static_assert(offsetof(WireExactPassRequest, name_len) == 28);
  static_assert(sizeof(WireExactPassHeader) == 16);
  EXPECT_EQ(static_cast<uint16_t>(WireOp::kHello), 8);
  EXPECT_EQ(static_cast<uint16_t>(WireOp::kHelloAck), 9);
  EXPECT_EQ(static_cast<uint16_t>(WireOp::kSampleRuns), 10);
  EXPECT_EQ(static_cast<uint16_t>(WireOp::kSampleListData), 11);
  EXPECT_EQ(static_cast<uint16_t>(WireOp::kExactPass), 12);
  EXPECT_EQ(static_cast<uint16_t>(WireOp::kExactPassData), 13);
}

TEST(WireFrameTest, V3LayoutIsPinned) {
  EXPECT_EQ(kQueryWireVersion, 3);
  static_assert(sizeof(WireSessionInfo) == 48);
  static_assert(sizeof(WireQueryHeader) == 16);
  static_assert(sizeof(WireQueryRequest) == 32);
  static_assert(sizeof(WireQueryResultHeader) == 24);
  static_assert(sizeof(WireQueryResultRecord) == 48);
  static_assert(sizeof(WireQuantileEstimate) == 40);
  EXPECT_EQ(static_cast<uint16_t>(WireOp::kOpenSession), 14);
  EXPECT_EQ(static_cast<uint16_t>(WireOp::kSessionInfo), 15);
  EXPECT_EQ(static_cast<uint16_t>(WireOp::kQuery), 16);
  EXPECT_EQ(static_cast<uint16_t>(WireOp::kQueryResult), 17);
}

TEST(WireFrameTest, V4LayoutIsPinned) {
  EXPECT_EQ(kExtentWireVersion, 4);
  static_assert(sizeof(WireExtentInfo) == 48);
  static_assert(offsetof(WireExtentInfo, max_extents_per_read) == 32);
  static_assert(offsetof(WireExtentInfo, default_codec) == 40);
  static_assert(sizeof(WireReadExtents) == 16);
  EXPECT_EQ(static_cast<uint16_t>(WireOp::kOpenExtents), 18);
  EXPECT_EQ(static_cast<uint16_t>(WireOp::kExtentInfo), 19);
  EXPECT_EQ(static_cast<uint16_t>(WireOp::kReadExtents), 20);
  EXPECT_EQ(static_cast<uint16_t>(WireOp::kExtentData), 21);
}

TEST(WireFrameTest, V5LayoutIsPinned) {
  EXPECT_EQ(kAppendWireVersion, 5);
  static_assert(sizeof(WireAppendRequest) == 16);
  static_assert(offsetof(WireAppendRequest, count) == 0);
  static_assert(offsetof(WireAppendRequest, name_len) == 8);
  static_assert(offsetof(WireAppendRequest, flags) == 12);
  static_assert(sizeof(WireAppendAck) == 16);
  static_assert(offsetof(WireAppendAck, total_elements) == 0);
  static_assert(offsetof(WireAppendAck, num_segments) == 8);
  EXPECT_EQ(static_cast<uint16_t>(WireOp::kAppend), 22);
  EXPECT_EQ(static_cast<uint16_t>(WireOp::kAppendAck), 23);
}

TEST(WireFrameTest, V6LayoutIsPinned) {
  EXPECT_EQ(kStatsWireVersion, 6);
  EXPECT_EQ(kMaxWireVersion, 6);
  EXPECT_EQ(kWireStatsVersion, 1u);
  static_assert(sizeof(WireStatsHeader) == 8);
  static_assert(offsetof(WireStatsHeader, stats_version) == 0);
  static_assert(offsetof(WireStatsHeader, num_metrics) == 4);
  static_assert(sizeof(WireStatsMetric) == 4);
  static_assert(offsetof(WireStatsMetric, name_len) == 0);
  static_assert(offsetof(WireStatsMetric, type) == 2);
  static_assert(offsetof(WireStatsMetric, reserved) == 3);
  static_assert(sizeof(WireStatsHistogram) == 40);
  static_assert(offsetof(WireStatsHistogram, count) == 0);
  static_assert(offsetof(WireStatsHistogram, sum) == 8);
  static_assert(offsetof(WireStatsHistogram, subrun_size) == 16);
  static_assert(offsetof(WireStatsHistogram, num_runs) == 24);
  static_assert(offsetof(WireStatsHistogram, num_samples) == 32);
  static_assert(offsetof(WireStatsHistogram, reserved) == 36);
  EXPECT_EQ(static_cast<uint16_t>(WireOp::kStats), 24);
  EXPECT_EQ(static_cast<uint16_t>(WireOp::kStatsData), 25);
}

TEST(WireFrameTest, FramesCarryPerOpVersions) {
  // v1 ops must keep encoding version 1 forever (that is what keeps the
  // committed wire_v1.bin stable and lets old nodes serve new clients);
  // compute ops announce themselves as v2 so v1-only peers reject exactly
  // the frames they cannot serve.
  for (WireOp op : {WireOp::kPing, WireOp::kPong, WireOp::kOpenDataset,
                    WireOp::kDatasetInfo, WireOp::kReadRange,
                    WireOp::kRangeData, WireOp::kError}) {
    EXPECT_EQ(WireOpVersion(op), 1u) << WireOpName(static_cast<uint16_t>(op));
  }
  for (WireOp op : {WireOp::kHello, WireOp::kHelloAck, WireOp::kSampleRuns,
                    WireOp::kSampleListData, WireOp::kExactPass,
                    WireOp::kExactPassData}) {
    EXPECT_EQ(WireOpVersion(op), 2u) << WireOpName(static_cast<uint16_t>(op));
  }
  for (WireOp op : {WireOp::kOpenSession, WireOp::kSessionInfo,
                    WireOp::kQuery, WireOp::kQueryResult}) {
    EXPECT_EQ(WireOpVersion(op), 3u) << WireOpName(static_cast<uint16_t>(op));
  }
  for (WireOp op : {WireOp::kOpenExtents, WireOp::kExtentInfo,
                    WireOp::kReadExtents, WireOp::kExtentData}) {
    EXPECT_EQ(WireOpVersion(op), 4u) << WireOpName(static_cast<uint16_t>(op));
  }
  for (WireOp op : {WireOp::kAppend, WireOp::kAppendAck}) {
    EXPECT_EQ(WireOpVersion(op), 5u) << WireOpName(static_cast<uint16_t>(op));
  }
  for (WireOp op : {WireOp::kStats, WireOp::kStatsData}) {
    EXPECT_EQ(WireOpVersion(op), 6u) << WireOpName(static_cast<uint16_t>(op));
  }
  // And EncodeFrame stamps that version into the header.
  std::vector<uint8_t> v1 = EncodeFrame(WireOp::kPing, nullptr, 0);
  std::vector<uint8_t> v2 = EncodeFrame(WireOp::kHello, nullptr, 0);
  WireFrameHeader header;
  std::memcpy(&header, v1.data(), sizeof(header));
  EXPECT_EQ(header.version, 1);
  std::memcpy(&header, v2.data(), sizeof(header));
  EXPECT_EQ(header.version, 2);
  size_t consumed = 0;
  EXPECT_TRUE(DecodeFrame(v2.data(), v2.size(), &consumed).ok());
}

TEST(WireFrameTest, PayloadCapBoundaryIsExact) {
  // Exactly kMaxWirePayload is framable; one byte more is rejected before
  // any allocation happens.
  WireFrameHeader header;
  header.op = static_cast<uint16_t>(WireOp::kRangeData);
  header.payload_len = kMaxWirePayload;
  EXPECT_TRUE(ValidateFrameHeader(header).ok());
  header.payload_len = kMaxWirePayload + 1;
  Status over = ValidateFrameHeader(header);
  ASSERT_FALSE(over.ok());
  EXPECT_NE(over.message().find("cap"), std::string::npos);
}

TEST(WireFrameTest, ZeroLengthPayloadFrameIsWellFormed) {
  // CRC-32 of empty input is 0 by definition; an empty-payload frame must
  // encode that, survive the round trip, and consume exactly one header.
  std::vector<uint8_t> bytes = EncodeFrame(WireOp::kHello, nullptr, 0);
  WireFrameHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  EXPECT_EQ(header.payload_len, 0u);
  EXPECT_EQ(header.payload_crc, Crc32(nullptr, 0));
  EXPECT_EQ(header.payload_crc, 0u);
  size_t consumed = 0;
  auto frame = DecodeFrame(bytes.data(), bytes.size(), &consumed);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(consumed, sizeof(WireFrameHeader));
  EXPECT_TRUE(frame->payload.empty());
}

TEST(WireFrameTest, EncodeDecodeRoundTrip) {
  const std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  std::vector<uint8_t> bytes = EncodeFrame(WireOp::kRangeData, payload);
  ASSERT_EQ(bytes.size(), sizeof(WireFrameHeader) + payload.size());
  size_t consumed = 0;
  auto frame = DecodeFrame(bytes.data(), bytes.size(), &consumed);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(frame->op, static_cast<uint16_t>(WireOp::kRangeData));
  EXPECT_EQ(frame->payload, payload);
}

TEST(WireFrameTest, EmptyPayloadRoundTrip) {
  std::vector<uint8_t> bytes = EncodeFrame(WireOp::kPing, nullptr, 0);
  ASSERT_EQ(bytes.size(), sizeof(WireFrameHeader));
  size_t consumed = 0;
  auto frame = DecodeFrame(bytes.data(), bytes.size(), &consumed);
  ASSERT_TRUE(frame.ok());
  EXPECT_TRUE(frame->payload.empty());
}

TEST(WireFrameTest, ErrorFrameCarriesStatus) {
  const Status original = Status::NotFound("no such dataset");
  std::vector<uint8_t> bytes = EncodeErrorFrame(original);
  auto frame = DecodeFrame(bytes.data(), bytes.size(), nullptr);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->op, static_cast<uint16_t>(WireOp::kError));
  Status carried =
      DecodeErrorPayload(frame->payload.data(), frame->payload.size());
  EXPECT_EQ(carried.code(), StatusCode::kNotFound);
  EXPECT_EQ(carried.message(), "no such dataset");
}

TEST(WireFrameTest, ErrorPayloadNeverDecodesToOk) {
  // A malformed (short, or OK-coded) error payload must still be an error.
  EXPECT_FALSE(DecodeErrorPayload(nullptr, 0).ok());
  const uint32_t ok_code = 0;
  EXPECT_FALSE(
      DecodeErrorPayload(reinterpret_cast<const uint8_t*>(&ok_code),
                         sizeof(ok_code))
          .ok());
}

TEST(WireFrameTest, RejectsTruncation) {
  std::vector<uint8_t> bytes =
      EncodeFrame(WireOp::kRangeData, std::vector<uint8_t>(100, 7));
  // Shorter than a header, and shorter than the promised payload.
  for (size_t len : {size_t{0}, size_t{8}, sizeof(WireFrameHeader),
                     sizeof(WireFrameHeader) + 50}) {
    auto frame = DecodeFrame(bytes.data(), len, nullptr);
    EXPECT_FALSE(frame.ok()) << "length " << len;
    EXPECT_EQ(frame.status().code(), StatusCode::kIoError);
  }
}

TEST(WireFrameTest, RejectsCorruption) {
  std::vector<uint8_t> bytes =
      EncodeFrame(WireOp::kRangeData, std::vector<uint8_t>(32, 9));
  // Flip one payload byte: CRC must catch it.
  std::vector<uint8_t> corrupt = bytes;
  corrupt[sizeof(WireFrameHeader) + 5] ^= 0x40;
  auto frame = DecodeFrame(corrupt.data(), corrupt.size(), nullptr);
  EXPECT_FALSE(frame.ok());
  EXPECT_NE(frame.status().message().find("CRC"), std::string::npos);

  // Foreign magic.
  corrupt = bytes;
  corrupt[0] ^= 0xFF;
  EXPECT_FALSE(DecodeFrame(corrupt.data(), corrupt.size(), nullptr).ok());

  // Future version.
  corrupt = bytes;
  corrupt[4] = 99;
  auto skew = DecodeFrame(corrupt.data(), corrupt.size(), nullptr);
  EXPECT_FALSE(skew.ok());
  EXPECT_NE(skew.status().message().find("version"), std::string::npos);
}

TEST(WireFrameTest, RejectsOversizedPayloadClaim) {
  WireFrameHeader header;
  header.op = static_cast<uint16_t>(WireOp::kRangeData);
  header.payload_len = kMaxWirePayload + 1;
  std::vector<uint8_t> bytes(sizeof(header));
  std::memcpy(bytes.data(), &header, sizeof(header));
  auto frame = DecodeFrame(bytes.data(), bytes.size(), nullptr);
  EXPECT_FALSE(frame.ok());
  EXPECT_NE(frame.status().message().find("cap"), std::string::npos);
}

// ------------------------------------------------ Golden byte stream ----

/// The canned request/response conversation committed as
/// tests/golden/wire_v1.bin: every op of protocol v1, fixed payloads.
/// `MakeGoldenStream` must keep producing these exact bytes forever (or
/// the protocol version must be bumped and a new blob committed).
std::vector<uint8_t> MakeGoldenStream() {
  std::vector<uint8_t> stream;
  auto append = [&stream](const std::vector<uint8_t>& frame) {
    stream.insert(stream.end(), frame.begin(), frame.end());
  };
  // 1. PING / 7. PONG bracket the conversation.
  append(EncodeFrame(WireOp::kPing, nullptr, 0));
  // 2. OPEN_DATASET "sales"
  const std::string name = "sales";
  append(EncodeFrame(WireOp::kOpenDataset, name.data(), name.size()));
  // 3. DATASET_INFO: 1000 u64 elements, 4096-element read bound.
  WireDatasetInfo info;
  info.key_type = 2;  // KeyType::kU64
  info.element_size = 8;
  info.element_count = 1000;
  info.max_read_elements = 4096;
  append(EncodeFrame(WireOp::kDatasetInfo, &info, sizeof(info)));
  // 4. READ_RANGE [40, +4) of "sales"
  WireReadRange range;
  range.first = 40;
  range.count = 4;
  std::vector<uint8_t> request(sizeof(range) + name.size());
  std::memcpy(request.data(), &range, sizeof(range));
  std::memcpy(request.data() + sizeof(range), name.data(), name.size());
  append(EncodeFrame(WireOp::kReadRange, request.data(), request.size()));
  // 5. RANGE_DATA: the four u64 values {2, 3, 5, 7}.
  const uint64_t values[] = {2, 3, 5, 7};
  append(EncodeFrame(WireOp::kRangeData, values, sizeof(values)));
  // 6. ERROR: NOT_FOUND for a missing dataset.
  append(EncodeErrorFrame(
      Status::NotFound("node exports no dataset named 'tmp'")));
  append(EncodeFrame(WireOp::kPong, nullptr, 0));
  return stream;
}

std::vector<uint8_t> GoldenBlobBytes(const std::string& name = "wire_v1.bin") {
  const std::string path = std::string(OPAQ_GOLDEN_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  OPAQ_CHECK(in.good()) << "missing golden blob: " << path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

TEST(WireGoldenTest, EncoderProducesExactGoldenBytes) {
  EXPECT_EQ(MakeGoldenStream(), GoldenBlobBytes())
      << "the wire frame encoding changed; deployed nodes and clients "
         "would no longer interoperate. If intentional, bump kWireVersion "
         "and commit a new golden blob.";
}

TEST(WireGoldenTest, GoldenStreamDecodesFrameByFrame) {
  const std::vector<uint8_t> blob = GoldenBlobBytes();
  const uint16_t expected_ops[] = {
      static_cast<uint16_t>(WireOp::kPing),
      static_cast<uint16_t>(WireOp::kOpenDataset),
      static_cast<uint16_t>(WireOp::kDatasetInfo),
      static_cast<uint16_t>(WireOp::kReadRange),
      static_cast<uint16_t>(WireOp::kRangeData),
      static_cast<uint16_t>(WireOp::kError),
      static_cast<uint16_t>(WireOp::kPong),
  };
  size_t offset = 0;
  for (uint16_t expected : expected_ops) {
    size_t consumed = 0;
    auto frame =
        DecodeFrame(blob.data() + offset, blob.size() - offset, &consumed);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(frame->op, expected);
    offset += consumed;
  }
  EXPECT_EQ(offset, blob.size()) << "golden stream has trailing bytes";

  // Spot-check decoded payload contents, not just op codes.
  size_t consumed = 0;
  auto info_frame = DecodeFrame(
      blob.data() + 2 * sizeof(WireFrameHeader) + 5,  // past PING + OPEN
      blob.size(), &consumed);
  ASSERT_TRUE(info_frame.ok());
  WireDatasetInfo info;
  ASSERT_EQ(info_frame->payload.size(), sizeof(info));
  std::memcpy(&info, info_frame->payload.data(), sizeof(info));
  EXPECT_EQ(info.element_count, 1000u);
  EXPECT_EQ(info.max_read_elements, 4096u);
}

// ------------------------------------------- v2 golden byte stream ----

/// The canned compute conversation committed as tests/golden/wire_v2.bin:
/// every v2 op once, fixed payloads, over a u64 dataset "sales". Must
/// keep producing these exact bytes forever (or kMaxWireVersion must be
/// bumped and a new blob committed).
std::vector<uint8_t> MakeGoldenV2Stream() {
  std::vector<uint8_t> stream;
  auto append = [&stream](const std::vector<uint8_t>& frame) {
    stream.insert(stream.end(), frame.begin(), frame.end());
  };
  const std::string name = "sales";
  // 1./2. HELLO / HELLO_ACK: both sides announce version 2.
  WireHello hello;
  hello.max_version = 2;
  append(EncodeFrame(WireOp::kHello, &hello, sizeof(hello)));
  append(EncodeFrame(WireOp::kHelloAck, &hello, sizeof(hello)));
  // 3. SAMPLE_RUNS: m=8, s=2, seed 7, intro-select, sync.
  WireSampleRunsRequest request;
  request.run_size = 8;
  request.samples_per_run = 2;
  request.seed = 7;
  request.select_algorithm = 3;  // SelectAlgorithm::kIntroSelect
  request.io_mode = 0;
  request.prefetch_depth = 2;
  append(EncodeFrame(WireOp::kSampleRuns,
                     EncodeSampleRunsPayload(request, name)));
  // 4. SAMPLE_LIST_DATA: one run of 8 elements, samples {11, 22}.
  WireSampleListHeader list_header;
  list_header.subrun_size = 4;
  list_header.num_runs = 1;
  list_header.num_samples = 2;
  list_header.num_uncovered = 0;
  list_header.total_elements = 8;
  const uint64_t samples[] = {11, 22};
  std::vector<uint8_t> list_payload(sizeof(list_header) + sizeof(samples));
  std::memcpy(list_payload.data(), &list_header, sizeof(list_header));
  std::memcpy(list_payload.data() + sizeof(list_header), samples,
              sizeof(samples));
  append(EncodeFrame(WireOp::kSampleListData, list_payload));
  // 5. EXACT_PASS: one bracket [10, 30], budget 64, m=8.
  WireExactPassRequest exact;
  exact.memory_budget = 64;
  exact.run_size = 8;
  exact.io_mode = 0;
  exact.prefetch_depth = 2;
  std::vector<QuantileEstimate<uint64_t>> brackets(1);
  brackets[0].lower = 10;
  brackets[0].upper = 30;
  append(EncodeFrame(WireOp::kExactPass,
                     EncodeExactPassPayload(exact, brackets, name)));
  // 6. EXACT_PASS_DATA: 3 below, kept {11, 22}.
  WireExactScan<uint64_t> scan;
  scan.below = {3};
  scan.kept = {{11, 22}};
  auto scan_payload = EncodeExactScanPayload(scan);
  OPAQ_CHECK_OK(scan_payload.status());
  append(EncodeFrame(WireOp::kExactPassData, *scan_payload));
  return stream;
}

TEST(WireGoldenTest, EncoderProducesExactGoldenV2Bytes) {
  EXPECT_EQ(MakeGoldenV2Stream(), GoldenBlobBytes("wire_v2.bin"))
      << "the v2 compute frame encoding changed; deployed v2 nodes and "
         "clients would no longer interoperate. If intentional, bump "
         "kMaxWireVersion and commit a new golden blob.";
}

TEST(WireGoldenTest, GoldenV2StreamDecodesFrameByFrame) {
  const std::vector<uint8_t> blob = GoldenBlobBytes("wire_v2.bin");
  const uint16_t expected_ops[] = {
      static_cast<uint16_t>(WireOp::kHello),
      static_cast<uint16_t>(WireOp::kHelloAck),
      static_cast<uint16_t>(WireOp::kSampleRuns),
      static_cast<uint16_t>(WireOp::kSampleListData),
      static_cast<uint16_t>(WireOp::kExactPass),
      static_cast<uint16_t>(WireOp::kExactPassData),
  };
  size_t offset = 0;
  std::vector<WireFrame> frames;
  for (uint16_t expected : expected_ops) {
    WireFrameHeader header;
    ASSERT_GE(blob.size() - offset, sizeof(header));
    std::memcpy(&header, blob.data() + offset, sizeof(header));
    EXPECT_EQ(header.version, 2) << WireOpName(expected);
    size_t consumed = 0;
    auto frame =
        DecodeFrame(blob.data() + offset, blob.size() - offset, &consumed);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(frame->op, expected);
    frames.push_back(std::move(frame).value());
    offset += consumed;
  }
  EXPECT_EQ(offset, blob.size()) << "golden stream has trailing bytes";

  // The payloads decode through the real codecs, not just frame-wise.
  auto list = DecodeSampleListPayload<uint64_t>(frames[3].payload.data(),
                                                frames[3].payload.size());
  ASSERT_TRUE(list.ok()) << list.status().ToString();
  EXPECT_EQ(list->samples(), (std::vector<uint64_t>{11, 22}));
  EXPECT_EQ(list->accounting().total_elements, 8u);

  WireExactPassRequest exact;
  ASSERT_GE(frames[4].payload.size(), sizeof(exact));
  std::memcpy(&exact, frames[4].payload.data(), sizeof(exact));
  EXPECT_EQ(exact.name_len, 5u);  // "sales"
  EXPECT_EQ(exact.num_brackets, 1u);
  EXPECT_EQ(frames[4].payload.size(),
            sizeof(exact) + exact.name_len + 2 * sizeof(uint64_t));

  auto scan = DecodeExactScanPayload<uint64_t>(frames[5].payload.data(),
                                               frames[5].payload.size(),
                                               /*expected_brackets=*/1);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_EQ(scan->below, (std::vector<uint64_t>{3}));
  EXPECT_EQ(scan->kept[0], (std::vector<uint64_t>{11, 22}));
}

// ------------------------------------------- v3 golden byte stream ----

/// The canned query-serving conversation committed as
/// tests/golden/wire_v3.bin: every v3 op once, fixed payloads, over a u64
/// session "sales". Must keep producing these exact bytes forever (or
/// kMaxWireVersion must be bumped and a new blob committed).
std::vector<uint8_t> MakeGoldenV3Stream() {
  std::vector<uint8_t> stream;
  auto append = [&stream](const std::vector<uint8_t>& frame) {
    stream.insert(stream.end(), frame.begin(), frame.end());
  };
  const std::string name = "sales";
  // 1. OPEN_SESSION "sales" (payload is the bare name).
  append(EncodeFrame(WireOp::kOpenSession, name.data(), name.size()));
  // 2. SESSION_INFO: 1000 u64 elements, 125 samples, epoch 1.
  WireSessionInfo info;
  info.key_type = 2;  // KeyType::kU64
  info.element_size = 8;
  info.total_elements = 1000;
  info.max_rank_error = 8;
  info.num_samples = 125;
  info.epoch = 1;
  info.exact_enabled = 1;
  append(EncodeFrame(WireOp::kSessionInfo, &info, sizeof(info)));
  // 3. QUERY: one batch of all four request kinds (one exact-flagged).
  std::vector<QueryRequest<uint64_t>> requests = {
      QueryRequest<uint64_t>::Quantile(0.5),
      QueryRequest<uint64_t>::QuantileByRank(250, /*exact=*/true),
      QueryRequest<uint64_t>::RankOf(7),
      QueryRequest<uint64_t>::EquiQuantiles(4),
  };
  append(EncodeFrame(
      WireOp::kQuery,
      EncodeQueryPayload<uint64_t>(name, {requests.data(),
                                          requests.size()})));
  // 4. QUERY_RESULT: a quantile bracket with an exact value, and a rank
  // bracket — enough to pin every field of the result records.
  QueryResults<uint64_t> results;
  results.total_elements = 1000;
  results.max_rank_error = 8;
  QueryResult<uint64_t> quantile;
  quantile.kind = QueryRequest<uint64_t>::Kind::kQuantile;
  QuantileEstimate<uint64_t> estimate;
  estimate.target_rank = 500;
  estimate.lower_index = 61;
  estimate.upper_index = 63;
  estimate.max_rank_error = 8;
  estimate.lower = 11;
  estimate.upper = 22;
  estimate.lower_clamped = false;
  estimate.upper_clamped = true;
  quantile.estimates = {estimate};
  quantile.exact = {17};
  results.results.push_back(quantile);
  QueryResult<uint64_t> rank;
  rank.kind = QueryRequest<uint64_t>::Kind::kRank;
  rank.rank.min_rank_le = 3;
  rank.rank.max_rank_le = 19;
  rank.rank.min_rank_lt = 2;
  rank.rank.max_rank_lt = 18;
  results.results.push_back(rank);
  auto payload = EncodeQueryResultsPayload(results);
  OPAQ_CHECK_OK(payload.status());
  append(EncodeFrame(WireOp::kQueryResult, *payload));
  return stream;
}

TEST(WireGoldenTest, EncoderProducesExactGoldenV3Bytes) {
  EXPECT_EQ(MakeGoldenV3Stream(), GoldenBlobBytes("wire_v3.bin"))
      << "the v3 query frame encoding changed; deployed query daemons and "
         "clients would no longer interoperate. If intentional, bump "
         "kMaxWireVersion and commit a new golden blob.";
}

TEST(WireGoldenTest, GoldenV3StreamDecodesFrameByFrame) {
  const std::vector<uint8_t> blob = GoldenBlobBytes("wire_v3.bin");
  const uint16_t expected_ops[] = {
      static_cast<uint16_t>(WireOp::kOpenSession),
      static_cast<uint16_t>(WireOp::kSessionInfo),
      static_cast<uint16_t>(WireOp::kQuery),
      static_cast<uint16_t>(WireOp::kQueryResult),
  };
  size_t offset = 0;
  std::vector<WireFrame> frames;
  for (uint16_t expected : expected_ops) {
    WireFrameHeader header;
    ASSERT_GE(blob.size() - offset, sizeof(header));
    std::memcpy(&header, blob.data() + offset, sizeof(header));
    EXPECT_EQ(header.version, 3) << WireOpName(expected);
    size_t consumed = 0;
    auto frame =
        DecodeFrame(blob.data() + offset, blob.size() - offset, &consumed);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(frame->op, expected);
    frames.push_back(std::move(frame).value());
    offset += consumed;
  }
  EXPECT_EQ(offset, blob.size()) << "golden stream has trailing bytes";

  // The payloads decode through the real codecs, not just frame-wise.
  auto named = DecodeQueryName(frames[2].payload.data(),
                               frames[2].payload.size());
  ASSERT_TRUE(named.ok()) << named.status().ToString();
  EXPECT_EQ(named->second, "sales");
  auto requests = DecodeQueryRequests<uint64_t>(
      frames[2].payload.data(), frames[2].payload.size(), named->first);
  ASSERT_TRUE(requests.ok()) << requests.status().ToString();
  ASSERT_EQ(requests->size(), 4u);
  EXPECT_EQ((*requests)[0].kind, QueryRequest<uint64_t>::Kind::kQuantile);
  EXPECT_EQ((*requests)[0].phi, 0.5);
  EXPECT_TRUE((*requests)[1].exact);
  EXPECT_EQ((*requests)[1].rank, 250u);
  EXPECT_EQ((*requests)[2].value, 7u);
  EXPECT_EQ((*requests)[3].q, 4);

  auto results = DecodeQueryResultsPayload<uint64_t>(
      frames[3].payload.data(), frames[3].payload.size());
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  EXPECT_EQ(results->total_elements, 1000u);
  ASSERT_EQ(results->results.size(), 2u);
  ASSERT_EQ(results->results[0].estimates.size(), 1u);
  EXPECT_EQ(results->results[0].estimates[0].lower, 11u);
  EXPECT_EQ(results->results[0].estimates[0].upper, 22u);
  EXPECT_TRUE(results->results[0].estimates[0].upper_clamped);
  EXPECT_EQ(results->results[0].exact, (std::vector<uint64_t>{17}));
  EXPECT_EQ(results->results[1].rank.max_rank_le, 19u);
}

// ------------------------------------------- v4 golden byte stream ----

/// The canned extent-streaming conversation committed as
/// tests/golden/wire_v4.bin: every v4 op once, fixed payloads, over a u64
/// extent dataset "sales" (4 elements per extent, 14 elements, 4 extents).
/// The EXTENT_DATA frame carries a REAL stored extent — ExtentHeader,
/// payload CRC and all — so this blob also pins the on-wire stored-extent
/// layout against the extent codec. Must keep producing these exact bytes
/// forever (or kMaxWireVersion must be bumped and a new blob committed).
std::vector<uint8_t> MakeGoldenV4Stream() {
  std::vector<uint8_t> stream;
  auto append = [&stream](const std::vector<uint8_t>& frame) {
    stream.insert(stream.end(), frame.begin(), frame.end());
  };
  const std::string name = "sales";
  // 1. OPEN_EXTENTS "sales" (payload is the bare name).
  append(EncodeFrame(WireOp::kOpenExtents, name.data(), name.size()));
  // 2. EXTENT_INFO: u64 elements, 4 per extent, 14 total, 4 extents.
  WireExtentInfo info;
  info.key_type = 2;  // KeyType::kU64
  info.element_size = 8;
  info.element_count = 14;
  info.extent_elements = 4;
  info.num_extents = 4;
  info.max_extents_per_read = 16;
  info.default_codec = 1;  // ExtentCodec::kDelta
  append(EncodeFrame(WireOp::kExtentInfo, &info, sizeof(info)));
  // 3. READ_EXTENTS [0, +1) of "sales".
  WireReadExtents range;
  range.first_extent = 0;
  range.count = 1;
  std::vector<uint8_t> request(sizeof(range) + name.size());
  std::memcpy(request.data(), &range, sizeof(range));
  std::memcpy(request.data() + sizeof(range), name.data(), name.size());
  append(EncodeFrame(WireOp::kReadExtents, request.data(), request.size()));
  // 4. EXTENT_DATA: extent 0 stored raw — the four u64 values {2, 3, 5, 7}.
  const uint64_t values[] = {2, 3, 5, 7};
  ExtentHeader extent;
  extent.codec = 0;  // ExtentCodec::kRaw
  extent.payload_crc = Crc32(values, sizeof(values));
  extent.extent_index = 0;
  extent.unpacked_len = sizeof(values);
  extent.packed_len = sizeof(values);
  std::vector<uint8_t> stored(sizeof(extent) + sizeof(values));
  std::memcpy(stored.data(), &extent, sizeof(extent));
  std::memcpy(stored.data() + sizeof(extent), values, sizeof(values));
  append(EncodeFrame(WireOp::kExtentData, stored.data(), stored.size()));
  return stream;
}

TEST(WireGoldenTest, EncoderProducesExactGoldenV4Bytes) {
  EXPECT_EQ(MakeGoldenV4Stream(), GoldenBlobBytes("wire_v4.bin"))
      << "the v4 extent frame encoding changed; deployed nodes and clients "
         "would no longer interoperate. If intentional, bump "
         "kMaxWireVersion and commit a new golden blob.";
}

TEST(WireGoldenTest, GoldenV4StreamDecodesFrameByFrame) {
  const std::vector<uint8_t> blob = GoldenBlobBytes("wire_v4.bin");
  const uint16_t expected_ops[] = {
      static_cast<uint16_t>(WireOp::kOpenExtents),
      static_cast<uint16_t>(WireOp::kExtentInfo),
      static_cast<uint16_t>(WireOp::kReadExtents),
      static_cast<uint16_t>(WireOp::kExtentData),
  };
  size_t offset = 0;
  std::vector<WireFrame> frames;
  for (uint16_t expected : expected_ops) {
    WireFrameHeader header;
    ASSERT_GE(blob.size() - offset, sizeof(header));
    std::memcpy(&header, blob.data() + offset, sizeof(header));
    EXPECT_EQ(header.version, 4) << WireOpName(expected);
    size_t consumed = 0;
    auto frame =
        DecodeFrame(blob.data() + offset, blob.size() - offset, &consumed);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(frame->op, expected);
    frames.push_back(std::move(frame).value());
    offset += consumed;
  }
  EXPECT_EQ(offset, blob.size()) << "golden stream has trailing bytes";

  WireExtentInfo info;
  ASSERT_EQ(frames[1].payload.size(), sizeof(info));
  std::memcpy(&info, frames[1].payload.data(), sizeof(info));
  EXPECT_EQ(info.element_count, 14u);
  EXPECT_EQ(info.extent_elements, 4u);
  EXPECT_EQ(info.num_extents, 4u);
  EXPECT_EQ(info.max_extents_per_read, 16u);

  // The stored extent decodes through the REAL extent validator — the same
  // code path a v4 client runs on every received extent.
  uint64_t decoded[4] = {};
  Status s = DecodeStoredExtent(frames[3].payload.data(),
                                frames[3].payload.size(),
                                /*expected_index=*/0,
                                /*expected_unpacked=*/sizeof(decoded),
                                /*element_size=*/8, /*verify_crc=*/true,
                                decoded, nullptr);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(decoded[0], 2u);
  EXPECT_EQ(decoded[3], 7u);
}

// ------------------------------------------- v5 golden byte stream ----

/// The canned streaming-ingest conversation committed as
/// tests/golden/wire_v5.bin: the v5 op pair once, fixed payloads, over a
/// u64 live dataset "sales" — an APPEND of four elements and the ACK
/// carrying the dataset's new totals. Must keep producing these exact
/// bytes forever (or kMaxWireVersion must be bumped and a new blob
/// committed).
std::vector<uint8_t> MakeGoldenV5Stream() {
  std::vector<uint8_t> stream;
  auto append = [&stream](const std::vector<uint8_t>& frame) {
    stream.insert(stream.end(), frame.begin(), frame.end());
  };
  const std::string name = "sales";
  // 1. APPEND: the four u64 values {2, 3, 5, 7} as one new segment.
  WireAppendRequest request;
  request.count = 4;
  request.name_len = static_cast<uint32_t>(name.size());
  request.flags = 0;
  const uint64_t values[] = {2, 3, 5, 7};
  std::vector<uint8_t> payload(sizeof(request) + name.size() +
                               sizeof(values));
  std::memcpy(payload.data(), &request, sizeof(request));
  std::memcpy(payload.data() + sizeof(request), name.data(), name.size());
  std::memcpy(payload.data() + sizeof(request) + name.size(), values,
              sizeof(values));
  append(EncodeFrame(WireOp::kAppend, payload));
  // 2. APPEND_ACK: the dataset already held 1000 elements in 2 segments.
  WireAppendAck ack;
  ack.total_elements = 1004;
  ack.num_segments = 3;
  append(EncodeFrame(WireOp::kAppendAck, &ack, sizeof(ack)));
  return stream;
}

TEST(WireGoldenTest, EncoderProducesExactGoldenV5Bytes) {
  EXPECT_EQ(MakeGoldenV5Stream(), GoldenBlobBytes("wire_v5.bin"))
      << "the v5 ingest frame encoding changed; deployed nodes and remote "
         "writers would no longer interoperate. If intentional, bump "
         "kMaxWireVersion and commit a new golden blob.";
}

TEST(WireGoldenTest, GoldenV5StreamDecodesFrameByFrame) {
  const std::vector<uint8_t> blob = GoldenBlobBytes("wire_v5.bin");
  const uint16_t expected_ops[] = {
      static_cast<uint16_t>(WireOp::kAppend),
      static_cast<uint16_t>(WireOp::kAppendAck),
  };
  size_t offset = 0;
  std::vector<WireFrame> frames;
  for (uint16_t expected : expected_ops) {
    WireFrameHeader header;
    ASSERT_GE(blob.size() - offset, sizeof(header));
    std::memcpy(&header, blob.data() + offset, sizeof(header));
    EXPECT_EQ(header.version, 5) << WireOpName(expected);
    size_t consumed = 0;
    auto frame =
        DecodeFrame(blob.data() + offset, blob.size() - offset, &consumed);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(frame->op, expected);
    frames.push_back(std::move(frame).value());
    offset += consumed;
  }
  EXPECT_EQ(offset, blob.size()) << "golden stream has trailing bytes";

  // The APPEND payload parses field by field: prefix, name, raw elements.
  WireAppendRequest request;
  ASSERT_GE(frames[0].payload.size(), sizeof(request));
  std::memcpy(&request, frames[0].payload.data(), sizeof(request));
  EXPECT_EQ(request.count, 4u);
  EXPECT_EQ(request.name_len, 5u);  // "sales"
  EXPECT_EQ(request.flags, 0u);
  ASSERT_EQ(frames[0].payload.size(),
            sizeof(request) + request.name_len +
                request.count * sizeof(uint64_t));
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(
                            frames[0].payload.data() + sizeof(request)),
                        request.name_len),
            "sales");
  uint64_t elements[4] = {};
  std::memcpy(elements,
              frames[0].payload.data() + sizeof(request) + request.name_len,
              sizeof(elements));
  EXPECT_EQ(elements[0], 2u);
  EXPECT_EQ(elements[3], 7u);

  WireAppendAck ack;
  ASSERT_EQ(frames[1].payload.size(), sizeof(ack));
  std::memcpy(&ack, frames[1].payload.data(), sizeof(ack));
  EXPECT_EQ(ack.total_elements, 1004u);
  EXPECT_EQ(ack.num_segments, 3u);
}

// ------------------------------------------- v6 golden byte stream ----

/// The fixed snapshot every v6 golden/roundtrip case uses: one metric of
/// each type, values chosen so no field is zero by accident.
MetricsSnapshot GoldenSnapshot() {
  MetricsSnapshot snapshot;
  MetricSample counter;
  counter.name = "net.frames_served";
  counter.type = MetricType::kCounter;
  counter.value = 12345;
  snapshot.metrics.push_back(counter);
  MetricSample gauge;
  gauge.name = "query.sessions";
  gauge.type = MetricType::kGauge;
  gauge.value = static_cast<uint64_t>(int64_t{-3});  // two's complement
  snapshot.metrics.push_back(gauge);
  MetricSample histogram;
  histogram.name = "query.batch_latency_us";
  histogram.type = MetricType::kHistogram;
  histogram.histogram.count = 200;
  histogram.histogram.sum = 51200;
  histogram.histogram.subrun_size = 16;
  histogram.histogram.num_runs = 2;
  histogram.histogram.samples = {11, 23, 37, 53, 71, 97, 131, 211,
                                 331, 433, 557, 691};
  histogram.value = histogram.histogram.count;
  snapshot.metrics.push_back(histogram);
  return snapshot;
}

/// The canned stats conversation committed as tests/golden/wire_v6.bin:
/// the v6 op pair once — an empty-payload STATS poll and the STATS_DATA
/// snapshot with one counter, one gauge, and one sketch-backed histogram.
/// Must keep producing these exact bytes forever (or kMaxWireVersion must
/// be bumped and a new blob committed).
std::vector<uint8_t> MakeGoldenV6Stream() {
  std::vector<uint8_t> stream;
  auto append = [&stream](const std::vector<uint8_t>& frame) {
    stream.insert(stream.end(), frame.begin(), frame.end());
  };
  append(EncodeFrame(WireOp::kStats, nullptr, 0));
  append(EncodeFrame(WireOp::kStatsData,
                     EncodeStatsPayload(GoldenSnapshot())));
  return stream;
}

TEST(WireGoldenTest, EncoderProducesExactGoldenV6Bytes) {
  EXPECT_EQ(MakeGoldenV6Stream(), GoldenBlobBytes("wire_v6.bin"))
      << "the v6 stats frame encoding changed; deployed daemons and stats "
         "pollers would no longer interoperate. If intentional, bump "
         "kMaxWireVersion and commit a new golden blob.";
}

TEST(WireGoldenTest, GoldenV6StreamDecodesFrameByFrame) {
  const std::vector<uint8_t> blob = GoldenBlobBytes("wire_v6.bin");
  const uint16_t expected_ops[] = {
      static_cast<uint16_t>(WireOp::kStats),
      static_cast<uint16_t>(WireOp::kStatsData),
  };
  size_t offset = 0;
  std::vector<WireFrame> frames;
  for (uint16_t expected : expected_ops) {
    WireFrameHeader header;
    ASSERT_GE(blob.size() - offset, sizeof(header));
    std::memcpy(&header, blob.data() + offset, sizeof(header));
    EXPECT_EQ(header.version, 6) << WireOpName(expected);
    size_t consumed = 0;
    auto frame =
        DecodeFrame(blob.data() + offset, blob.size() - offset, &consumed);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(frame->op, expected);
    frames.push_back(std::move(frame).value());
    offset += consumed;
  }
  EXPECT_EQ(offset, blob.size()) << "golden stream has trailing bytes";

  EXPECT_TRUE(frames[0].payload.empty());
  auto decoded =
      DecodeStatsPayload(frames[1].payload.data(), frames[1].payload.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const MetricsSnapshot expected = GoldenSnapshot();
  ASSERT_EQ(decoded->metrics.size(), expected.metrics.size());
  for (size_t i = 0; i < expected.metrics.size(); ++i) {
    EXPECT_EQ(decoded->metrics[i].name, expected.metrics[i].name);
    EXPECT_EQ(decoded->metrics[i].type, expected.metrics[i].type);
    EXPECT_EQ(decoded->metrics[i].value, expected.metrics[i].value);
  }
  EXPECT_EQ(decoded->metrics[1].gauge_value(), -3);
  const HistogramSnapshot& hist = decoded->metrics[2].histogram;
  EXPECT_EQ(hist.count, 200u);
  EXPECT_EQ(hist.sum, 51200u);
  EXPECT_EQ(hist.subrun_size, 16u);
  EXPECT_EQ(hist.num_runs, 2u);
  EXPECT_EQ(hist.samples, expected.metrics[2].histogram.samples);
}

// --------------------------------------------- v6 stats payload codec ----

TEST(WireStatsTest, EmptySnapshotRoundTrips) {
  MetricsSnapshot empty;
  std::vector<uint8_t> payload = EncodeStatsPayload(empty);
  EXPECT_EQ(payload.size(), sizeof(WireStatsHeader));
  auto decoded = DecodeStatsPayload(payload.data(), payload.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded->metrics.empty());
  EXPECT_EQ(decoded->stats_version, kWireStatsVersion);
}

TEST(WireStatsTest, LiveRegistrySnapshotRoundTrips) {
  MetricsRegistry registry;
  registry.GetCounter("a.count")->Add(77);
  registry.GetGauge("b.gauge")->Set(-9000);
  LatencyHistogram::Config config;
  config.run_size = 32;
  config.samples_per_run = 8;
  LatencyHistogram* hist = registry.GetHistogram("c.hist", config);
  for (uint64_t v = 0; v < 100; ++v) hist->Record(v * 3);
  const MetricsSnapshot snapshot = registry.Snapshot();
  std::vector<uint8_t> payload = EncodeStatsPayload(snapshot);
  auto decoded = DecodeStatsPayload(payload.data(), payload.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->metrics.size(), 3u);
  EXPECT_EQ(decoded->metrics[0].name, "a.count");
  EXPECT_EQ(decoded->metrics[0].value, 77u);
  EXPECT_EQ(decoded->metrics[1].gauge_value(), -9000);
  EXPECT_EQ(decoded->metrics[2].histogram.samples,
            snapshot.metrics[2].histogram.samples);
  EXPECT_EQ(decoded->metrics[2].histogram.sum,
            snapshot.metrics[2].histogram.sum);
  // Decode -> encode is byte-stable (the golden blob depends on it).
  EXPECT_EQ(EncodeStatsPayload(*decoded), payload);
}

/// Every hostile case must come back as a Status, never a CHECK-abort.
Status DecodeStatus(const std::vector<uint8_t>& payload) {
  return DecodeStatsPayload(payload.data(), payload.size()).status();
}

TEST(WireStatsTest, HostilePayloadsSurfaceAsStatus) {
  const std::vector<uint8_t> good = EncodeStatsPayload(GoldenSnapshot());

  // Shorter than the header.
  EXPECT_FALSE(DecodeStatus({0x01, 0x02}).ok());

  // Unsupported snapshot layout version.
  {
    std::vector<uint8_t> bad = good;
    bad[0] = 0x7f;
    Status status = DecodeStatus(bad);
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.message().find("layout version"), std::string::npos);
  }

  // Metric count above the protocol cap.
  {
    std::vector<uint8_t> bad = good;
    const uint32_t huge = kMaxWireStatsMetrics + 1;
    std::memcpy(bad.data() + 4, &huge, sizeof(huge));
    Status status = DecodeStatus(bad);
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.message().find("protocol cap"), std::string::npos);
  }

  // Allocation bomb: a large claimed count with no bytes behind it must be
  // rejected BEFORE any reserve.
  {
    std::vector<uint8_t> bad(sizeof(WireStatsHeader));
    WireStatsHeader header;
    header.num_metrics = kMaxWireStatsMetrics;
    std::memcpy(bad.data(), &header, sizeof(header));
    Status status = DecodeStatus(bad);
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.message().find("carries only"), std::string::npos);
  }

  // Truncation at EVERY byte boundary of a real payload: always a clean
  // Status (the fuzz wall — no length may be trusted before checking).
  for (size_t len = 0; len < good.size(); ++len) {
    auto truncated = DecodeStatsPayload(good.data(), len);
    EXPECT_FALSE(truncated.ok()) << "truncation to " << len
                                 << " bytes decoded successfully";
  }

  // Trailing garbage past the last metric.
  {
    std::vector<uint8_t> bad = good;
    bad.push_back(0xee);
    Status status = DecodeStatus(bad);
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.message().find("trailing"), std::string::npos);
  }

  // Reserved bits in a metric record.
  {
    std::vector<uint8_t> bad = good;
    bad[sizeof(WireStatsHeader) + 3] = 0x01;  // first record's reserved byte
    Status status = DecodeStatus(bad);
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.message().find("reserved"), std::string::npos);
  }

  // Unknown metric type tag.
  {
    std::vector<uint8_t> bad = good;
    bad[sizeof(WireStatsHeader) + 2] = 0x09;  // first record's type byte
    Status status = DecodeStatus(bad);
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.message().find("unknown type"), std::string::npos);
  }

  // Zero-length metric name.
  {
    std::vector<uint8_t> bad = good;
    bad[sizeof(WireStatsHeader)] = 0;
    bad[sizeof(WireStatsHeader) + 1] = 0;
    EXPECT_FALSE(DecodeStatus(bad).ok());
  }

  // Unsorted histogram samples (break the renderers' rank arithmetic).
  {
    MetricsSnapshot snapshot = GoldenSnapshot();
    std::swap(snapshot.metrics[2].histogram.samples.front(),
              snapshot.metrics[2].histogram.samples.back());
    std::vector<uint8_t> bad = EncodeStatsPayload(snapshot);
    Status status = DecodeStatus(bad);
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.message().find("not sorted"), std::string::npos);
  }

  // Histogram with samples but sub-run size 0 (division bait).
  {
    MetricsSnapshot snapshot = GoldenSnapshot();
    snapshot.metrics[2].histogram.subrun_size = 0;
    std::vector<uint8_t> bad = EncodeStatsPayload(snapshot);
    Status status = DecodeStatus(bad);
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.message().find("sub-run size 0"), std::string::npos);
  }

  // Random byte-flip fuzz over the whole payload: decode either succeeds
  // or fails with a Status, but NEVER aborts; a success must re-encode.
  std::vector<uint8_t> fuzzed = good;
  uint64_t state = 0x9e3779b97f4a7c15ull;
  for (int round = 0; round < 2000; ++round) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const size_t pos = static_cast<size_t>(state >> 33) % fuzzed.size();
    const uint8_t old = fuzzed[pos];
    fuzzed[pos] ^= static_cast<uint8_t>(state);
    auto decoded = DecodeStatsPayload(fuzzed.data(), fuzzed.size());
    if (decoded.ok()) {
      EXPECT_EQ(EncodeStatsPayload(*decoded).size(), fuzzed.size());
    }
    fuzzed[pos] = old;
  }
}

}  // namespace
}  // namespace opaq
