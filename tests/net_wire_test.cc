// Wire-protocol codec tests: CRC correctness, frame round trips, rejection
// of truncation/corruption/foreign traffic, and the committed golden byte
// stream (`tests/golden/wire_v1.bin`) that pins frame format v1 — if the
// header layout, op codes, CRC polynomial or payload encodings ever drift,
// these fail in tier-1 instead of silently orphaning every deployed node.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <fstream>
#include <iterator>
#include <vector>

#include "net/wire.h"

namespace opaq {
namespace {

TEST(Crc32Test, KnownAnswers) {
  // The classic CRC-32 (IEEE 802.3) check value.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0x00000000u);
  EXPECT_EQ(Crc32("a", 1), 0xE8B7BE43u);
}

TEST(WireFrameTest, HeaderLayoutIsPinned) {
  static_assert(sizeof(WireFrameHeader) == 16);
  static_assert(offsetof(WireFrameHeader, magic) == 0);
  static_assert(offsetof(WireFrameHeader, version) == 4);
  static_assert(offsetof(WireFrameHeader, op) == 6);
  static_assert(offsetof(WireFrameHeader, payload_len) == 8);
  static_assert(offsetof(WireFrameHeader, payload_crc) == 12);
  static_assert(sizeof(WireDatasetInfo) == 24);
  static_assert(sizeof(WireReadRange) == 16);
  EXPECT_EQ(WireFrameHeader::kMagic, 0x4e51504fu);
  EXPECT_EQ(kWireVersion, 1);
}

TEST(WireFrameTest, EncodeDecodeRoundTrip) {
  const std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  std::vector<uint8_t> bytes = EncodeFrame(WireOp::kRangeData, payload);
  ASSERT_EQ(bytes.size(), sizeof(WireFrameHeader) + payload.size());
  size_t consumed = 0;
  auto frame = DecodeFrame(bytes.data(), bytes.size(), &consumed);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(frame->op, static_cast<uint16_t>(WireOp::kRangeData));
  EXPECT_EQ(frame->payload, payload);
}

TEST(WireFrameTest, EmptyPayloadRoundTrip) {
  std::vector<uint8_t> bytes = EncodeFrame(WireOp::kPing, nullptr, 0);
  ASSERT_EQ(bytes.size(), sizeof(WireFrameHeader));
  size_t consumed = 0;
  auto frame = DecodeFrame(bytes.data(), bytes.size(), &consumed);
  ASSERT_TRUE(frame.ok());
  EXPECT_TRUE(frame->payload.empty());
}

TEST(WireFrameTest, ErrorFrameCarriesStatus) {
  const Status original = Status::NotFound("no such dataset");
  std::vector<uint8_t> bytes = EncodeErrorFrame(original);
  auto frame = DecodeFrame(bytes.data(), bytes.size(), nullptr);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->op, static_cast<uint16_t>(WireOp::kError));
  Status carried =
      DecodeErrorPayload(frame->payload.data(), frame->payload.size());
  EXPECT_EQ(carried.code(), StatusCode::kNotFound);
  EXPECT_EQ(carried.message(), "no such dataset");
}

TEST(WireFrameTest, ErrorPayloadNeverDecodesToOk) {
  // A malformed (short, or OK-coded) error payload must still be an error.
  EXPECT_FALSE(DecodeErrorPayload(nullptr, 0).ok());
  const uint32_t ok_code = 0;
  EXPECT_FALSE(
      DecodeErrorPayload(reinterpret_cast<const uint8_t*>(&ok_code),
                         sizeof(ok_code))
          .ok());
}

TEST(WireFrameTest, RejectsTruncation) {
  std::vector<uint8_t> bytes =
      EncodeFrame(WireOp::kRangeData, std::vector<uint8_t>(100, 7));
  // Shorter than a header, and shorter than the promised payload.
  for (size_t len : {size_t{0}, size_t{8}, sizeof(WireFrameHeader),
                     sizeof(WireFrameHeader) + 50}) {
    auto frame = DecodeFrame(bytes.data(), len, nullptr);
    EXPECT_FALSE(frame.ok()) << "length " << len;
    EXPECT_EQ(frame.status().code(), StatusCode::kIoError);
  }
}

TEST(WireFrameTest, RejectsCorruption) {
  std::vector<uint8_t> bytes =
      EncodeFrame(WireOp::kRangeData, std::vector<uint8_t>(32, 9));
  // Flip one payload byte: CRC must catch it.
  std::vector<uint8_t> corrupt = bytes;
  corrupt[sizeof(WireFrameHeader) + 5] ^= 0x40;
  auto frame = DecodeFrame(corrupt.data(), corrupt.size(), nullptr);
  EXPECT_FALSE(frame.ok());
  EXPECT_NE(frame.status().message().find("CRC"), std::string::npos);

  // Foreign magic.
  corrupt = bytes;
  corrupt[0] ^= 0xFF;
  EXPECT_FALSE(DecodeFrame(corrupt.data(), corrupt.size(), nullptr).ok());

  // Future version.
  corrupt = bytes;
  corrupt[4] = 99;
  auto skew = DecodeFrame(corrupt.data(), corrupt.size(), nullptr);
  EXPECT_FALSE(skew.ok());
  EXPECT_NE(skew.status().message().find("version"), std::string::npos);
}

TEST(WireFrameTest, RejectsOversizedPayloadClaim) {
  WireFrameHeader header;
  header.op = static_cast<uint16_t>(WireOp::kRangeData);
  header.payload_len = kMaxWirePayload + 1;
  std::vector<uint8_t> bytes(sizeof(header));
  std::memcpy(bytes.data(), &header, sizeof(header));
  auto frame = DecodeFrame(bytes.data(), bytes.size(), nullptr);
  EXPECT_FALSE(frame.ok());
  EXPECT_NE(frame.status().message().find("cap"), std::string::npos);
}

// ------------------------------------------------ Golden byte stream ----

/// The canned request/response conversation committed as
/// tests/golden/wire_v1.bin: every op of protocol v1, fixed payloads.
/// `MakeGoldenStream` must keep producing these exact bytes forever (or
/// the protocol version must be bumped and a new blob committed).
std::vector<uint8_t> MakeGoldenStream() {
  std::vector<uint8_t> stream;
  auto append = [&stream](const std::vector<uint8_t>& frame) {
    stream.insert(stream.end(), frame.begin(), frame.end());
  };
  // 1. PING / 7. PONG bracket the conversation.
  append(EncodeFrame(WireOp::kPing, nullptr, 0));
  // 2. OPEN_DATASET "sales"
  const std::string name = "sales";
  append(EncodeFrame(WireOp::kOpenDataset, name.data(), name.size()));
  // 3. DATASET_INFO: 1000 u64 elements, 4096-element read bound.
  WireDatasetInfo info;
  info.key_type = 2;  // KeyType::kU64
  info.element_size = 8;
  info.element_count = 1000;
  info.max_read_elements = 4096;
  append(EncodeFrame(WireOp::kDatasetInfo, &info, sizeof(info)));
  // 4. READ_RANGE [40, +4) of "sales"
  WireReadRange range;
  range.first = 40;
  range.count = 4;
  std::vector<uint8_t> request(sizeof(range) + name.size());
  std::memcpy(request.data(), &range, sizeof(range));
  std::memcpy(request.data() + sizeof(range), name.data(), name.size());
  append(EncodeFrame(WireOp::kReadRange, request.data(), request.size()));
  // 5. RANGE_DATA: the four u64 values {2, 3, 5, 7}.
  const uint64_t values[] = {2, 3, 5, 7};
  append(EncodeFrame(WireOp::kRangeData, values, sizeof(values)));
  // 6. ERROR: NOT_FOUND for a missing dataset.
  append(EncodeErrorFrame(
      Status::NotFound("node exports no dataset named 'tmp'")));
  append(EncodeFrame(WireOp::kPong, nullptr, 0));
  return stream;
}

std::vector<uint8_t> GoldenBlobBytes() {
  const std::string path = std::string(OPAQ_GOLDEN_DIR) + "/wire_v1.bin";
  std::ifstream in(path, std::ios::binary);
  OPAQ_CHECK(in.good()) << "missing golden blob: " << path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

TEST(WireGoldenTest, EncoderProducesExactGoldenBytes) {
  EXPECT_EQ(MakeGoldenStream(), GoldenBlobBytes())
      << "the wire frame encoding changed; deployed nodes and clients "
         "would no longer interoperate. If intentional, bump kWireVersion "
         "and commit a new golden blob.";
}

TEST(WireGoldenTest, GoldenStreamDecodesFrameByFrame) {
  const std::vector<uint8_t> blob = GoldenBlobBytes();
  const uint16_t expected_ops[] = {
      static_cast<uint16_t>(WireOp::kPing),
      static_cast<uint16_t>(WireOp::kOpenDataset),
      static_cast<uint16_t>(WireOp::kDatasetInfo),
      static_cast<uint16_t>(WireOp::kReadRange),
      static_cast<uint16_t>(WireOp::kRangeData),
      static_cast<uint16_t>(WireOp::kError),
      static_cast<uint16_t>(WireOp::kPong),
  };
  size_t offset = 0;
  for (uint16_t expected : expected_ops) {
    size_t consumed = 0;
    auto frame =
        DecodeFrame(blob.data() + offset, blob.size() - offset, &consumed);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(frame->op, expected);
    offset += consumed;
  }
  EXPECT_EQ(offset, blob.size()) << "golden stream has trailing bytes";

  // Spot-check decoded payload contents, not just op codes.
  size_t consumed = 0;
  auto info_frame = DecodeFrame(
      blob.data() + 2 * sizeof(WireFrameHeader) + 5,  // past PING + OPEN
      blob.size(), &consumed);
  ASSERT_TRUE(info_frame.ok());
  WireDatasetInfo info;
  ASSERT_EQ(info_frame->payload.size(), sizeof(info));
  std::memcpy(&info, info_frame->payload.data(), sizeof(info));
  EXPECT_EQ(info.element_count, 1000u);
  EXPECT_EQ(info.max_read_elements, 4096u);
}

}  // namespace
}  // namespace opaq
