// Unit tests for src/baselines: reservoir sampling, the [AS95]-style
// adaptive histogram, P2, Munro-Paterson, Greenwald-Khanna, KLL, t-Digest,
// and Frugal-1U. Each is validated for interface contracts and for
// reasonable accuracy on known distributions (they are point estimators —
// the accuracy thresholds are deliberately loose; the *bounded* error story
// belongs to OPAQ).

#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <numeric>

#include "baselines/as95_histogram.h"
#include "baselines/frugal.h"
#include "baselines/gk.h"
#include "baselines/kll.h"
#include "baselines/munro_paterson.h"
#include "baselines/p2.h"
#include "baselines/reservoir_sample.h"
#include "baselines/tdigest.h"
#include "data/dataset.h"
#include "metrics/ground_truth.h"
#include "metrics/rer.h"

namespace opaq {
namespace {

std::vector<double> Dectiles() {
  std::vector<double> out;
  for (int d = 1; d <= 9; ++d) out.push_back(d / 10.0);
  return out;
}

// Feeds `data` and checks each dectile's point-RER_A against `limit_pct`.
template <typename Estimator>
void ExpectDectileAccuracy(Estimator& estimator,
                           const std::vector<uint64_t>& data,
                           double limit_pct) {
  for (uint64_t v : data) estimator.Add(v);
  GroundTruth<uint64_t> truth(data);
  for (double phi : Dectiles()) {
    auto est = estimator.EstimateQuantile(phi);
    ASSERT_TRUE(est.ok()) << estimator.name() << " phi=" << phi;
    double err = PointRerA(truth, *est, truth.TargetRank(phi));
    EXPECT_LE(err, limit_pct)
        << estimator.name() << " phi=" << phi << " est=" << *est;
  }
}

std::vector<uint64_t> UniformData(uint64_t n, uint64_t seed = 1) {
  DatasetSpec spec;
  spec.n = n;
  spec.seed = seed;
  spec.distribution = Distribution::kUniform;
  return GenerateDataset<uint64_t>(spec);
}

std::vector<uint64_t> ZipfData(uint64_t n, uint64_t seed = 1) {
  DatasetSpec spec;
  spec.n = n;
  spec.seed = seed;
  spec.distribution = Distribution::kZipf;
  return GenerateDataset<uint64_t>(spec);
}

// --------------------------------------------------------------- Reservoir --

TEST(ReservoirTest, KeepsAtMostCapacity) {
  ReservoirSampleEstimator<uint64_t> r(100, 7);
  for (uint64_t i = 0; i < 10000; ++i) r.Add(i);
  EXPECT_EQ(r.count(), 10000u);
  EXPECT_EQ(r.MemoryElements(), 100u);
}

TEST(ReservoirTest, SmallStreamIsExact) {
  ReservoirSampleEstimator<uint64_t> r(100, 7);
  for (uint64_t i = 1; i <= 50; ++i) r.Add(i);
  auto est = r.EstimateQuantile(0.5);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(*est, 25u);  // exact: all elements retained
}

TEST(ReservoirTest, AccuracyOnUniform) {
  ReservoirSampleEstimator<uint64_t> r(3000, 11);
  ExpectDectileAccuracy(r, UniformData(200000), 5.0);
}

TEST(ReservoirTest, AccuracyOnZipf) {
  ReservoirSampleEstimator<uint64_t> r(3000, 11);
  ExpectDectileAccuracy(r, ZipfData(200000), 5.0);
}

TEST(ReservoirTest, NoDataFails) {
  ReservoirSampleEstimator<uint64_t> r(10, 1);
  EXPECT_FALSE(r.EstimateQuantile(0.5).ok());
}

TEST(ReservoirTest, RejectsBadPhi) {
  ReservoirSampleEstimator<uint64_t> r(10, 1);
  r.Add(1);
  EXPECT_FALSE(r.EstimateQuantile(0.0).ok());
  EXPECT_FALSE(r.EstimateQuantile(1.5).ok());
}

TEST(ReservoirTest, ConsumeFileInterface) {
  auto data = UniformData(5000);
  MemoryBlockDevice dev;
  ASSERT_TRUE(WriteDataset(data, &dev).ok());
  auto file = TypedDataFile<uint64_t>::Open(&dev);
  ASSERT_TRUE(file.ok());
  ReservoirSampleEstimator<uint64_t> r(1000, 3);
  ASSERT_TRUE(r.ConsumeFile(&*file, 512).ok());
  EXPECT_EQ(r.count(), 5000u);
}

// ---------------------------------------------------------------- AS95 ----

TEST(As95Test, ExactOnNarrowRange) {
  As95HistogramEstimator<uint64_t> h(1000);
  std::vector<uint64_t> data(10000);
  std::iota(data.begin(), data.end(), 0);
  ExpectDectileAccuracy(h, data, 1.0);
}

TEST(As95Test, AdaptsToGrowingRange) {
  As95HistogramEstimator<uint64_t> h(512);
  // Values arrive small first, then jump orders of magnitude.
  std::vector<uint64_t> data;
  for (uint64_t i = 0; i < 5000; ++i) data.push_back(i % 100);
  for (uint64_t i = 0; i < 5000; ++i) data.push_back(1000000 + i);
  for (uint64_t v : data) h.Add(v);
  GroundTruth<uint64_t> truth(data);
  auto est = h.EstimateQuantile(0.5);
  ASSERT_TRUE(est.ok());
  EXPECT_LE(PointRerA(truth, *est, truth.TargetRank(0.5)), 2.0);
}

TEST(As95Test, AccuracyOnUniform) {
  As95HistogramEstimator<uint64_t> h(3000);
  ExpectDectileAccuracy(h, UniformData(200000), 2.0);
}

TEST(As95Test, AccuracyOnZipf) {
  // Skew hurts equi-width histograms (the paper's point about [AS95]);
  // allow a visibly looser threshold.
  As95HistogramEstimator<uint64_t> h(3000);
  ExpectDectileAccuracy(h, ZipfData(200000), 15.0);
}

TEST(As95Test, MemoryChargesBuckets) {
  As95HistogramEstimator<uint64_t> h(128);
  EXPECT_EQ(h.MemoryElements(), 128u);
}

TEST(As95Test, RequiresEvenBuckets) {
  EXPECT_DEATH(As95HistogramEstimator<uint64_t>(7), "even");
}

TEST(As95Test, SingleValueStream) {
  As95HistogramEstimator<uint64_t> h(16);
  for (int i = 0; i < 100; ++i) h.Add(42);
  auto est = h.EstimateQuantile(0.5);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(static_cast<double>(*est), 42.0, 1.0);
}

// ------------------------------------------------------------------ P2 ----

TEST(P2Test, ExactUnderFiveObservations) {
  P2Estimator<uint64_t> p2({0.5});
  p2.Add(30);
  p2.Add(10);
  p2.Add(20);
  auto est = p2.EstimateQuantile(0.5);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(*est, 20u);
}

TEST(P2Test, RejectsUnregisteredPhi) {
  P2Estimator<uint64_t> p2({0.5});
  p2.Add(1);
  EXPECT_FALSE(p2.EstimateQuantile(0.25).ok());
}

TEST(P2Test, MedianOnUniformConverges) {
  P2Estimator<uint64_t> p2(Dectiles());
  ExpectDectileAccuracy(p2, UniformData(100000), 3.0);
}

TEST(P2Test, ConstantMemory) {
  P2Estimator<uint64_t> p2(Dectiles());
  uint64_t before = p2.MemoryElements();
  for (uint64_t i = 0; i < 50000; ++i) p2.Add(i);
  EXPECT_EQ(p2.MemoryElements(), before);  // O(1) by construction
  EXPECT_EQ(p2.count(), 50000u);
}

TEST(P2Test, MonotoneQuantilesOnSmoothData) {
  P2Estimator<double> p2(Dectiles());
  DatasetSpec spec;
  spec.n = 50000;
  spec.distribution = Distribution::kNormal;
  for (double v : GenerateDataset<double>(spec)) p2.Add(v);
  double prev = -1;
  for (double phi : Dectiles()) {
    auto est = p2.EstimateQuantile(phi);
    ASSERT_TRUE(est.ok());
    EXPECT_GE(*est, prev);
    prev = *est;
  }
}

// -------------------------------------------------------- Munro-Paterson --

TEST(MunroPatersonTest, ExactWhileDataFitsOneBuffer) {
  MunroPatersonEstimator<uint64_t> mp(1024);
  std::vector<uint64_t> data(1000);
  std::iota(data.begin(), data.end(), 1);
  for (uint64_t v : data) mp.Add(v);
  auto est = mp.EstimateQuantile(0.5);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(*est, 500u);
}

TEST(MunroPatersonTest, CollapsesToLogBuffers) {
  MunroPatersonEstimator<uint64_t> mp(256);
  for (uint64_t i = 0; i < 100000; ++i) mp.Add(i);
  // 100000/256 ≈ 391 level-0 buffers collapse into <= log2(391)+1 levels.
  EXPECT_LE(mp.num_levels(), 10u);
  EXPECT_LE(mp.MemoryElements(), 256u * 12);
}

TEST(MunroPatersonTest, AccuracyOnUniform) {
  MunroPatersonEstimator<uint64_t> mp(3000);
  ExpectDectileAccuracy(mp, UniformData(200000), 3.0);
}

TEST(MunroPatersonTest, AccuracyOnZipf) {
  MunroPatersonEstimator<uint64_t> mp(3000);
  ExpectDectileAccuracy(mp, ZipfData(200000), 3.0);
}

TEST(MunroPatersonTest, NoDataFails) {
  MunroPatersonEstimator<uint64_t> mp(16);
  EXPECT_FALSE(mp.EstimateQuantile(0.5).ok());
}

// ------------------------------------------------------------------- GK ----

TEST(GkTest, SummaryStaysSmall) {
  GkEstimator<uint64_t> gk(0.01);
  for (uint64_t i = 0; i < 100000; ++i) gk.Add(i * 2654435761u % 1000000);
  // Theory: O(1/eps * log(eps n)) tuples; 0.01 => a few hundred.
  EXPECT_LE(gk.num_tuples(), 2000u);
}

TEST(GkTest, ErrorWithinEpsilonOnUniform) {
  const double eps = 0.01;
  GkEstimator<uint64_t> gk(eps);
  auto data = UniformData(100000);
  for (uint64_t v : data) gk.Add(v);
  GroundTruth<uint64_t> truth(data);
  for (double phi : Dectiles()) {
    auto est = gk.EstimateQuantile(phi);
    ASSERT_TRUE(est.ok());
    // PointRerA is rank distance in percent; eps*n ranks == eps*100 percent.
    EXPECT_LE(PointRerA(truth, *est, truth.TargetRank(phi)),
              eps * 100 + 0.01);
  }
}

TEST(GkTest, ErrorWithinEpsilonOnZipf) {
  const double eps = 0.01;
  GkEstimator<uint64_t> gk(eps);
  auto data = ZipfData(100000);
  for (uint64_t v : data) gk.Add(v);
  GroundTruth<uint64_t> truth(data);
  for (double phi : Dectiles()) {
    auto est = gk.EstimateQuantile(phi);
    ASSERT_TRUE(est.ok());
    EXPECT_LE(PointRerA(truth, *est, truth.TargetRank(phi)),
              eps * 100 + 0.01);
  }
}

TEST(GkTest, ExtremesAreExact) {
  GkEstimator<uint64_t> gk(0.05);
  auto data = UniformData(20000);
  for (uint64_t v : data) gk.Add(v);
  GroundTruth<uint64_t> truth(data);
  auto max_est = gk.EstimateQuantile(1.0);
  ASSERT_TRUE(max_est.ok());
  EXPECT_EQ(*max_est, truth.ValueAtRank(truth.n()));
}

TEST(GkTest, SortedInsertionOrder) {
  GkEstimator<uint64_t> gk(0.02);
  for (uint64_t i = 0; i < 50000; ++i) gk.Add(i);
  GroundTruth<uint64_t> truth([] {
    std::vector<uint64_t> v(50000);
    std::iota(v.begin(), v.end(), 0);
    return v;
  }());
  auto est = gk.EstimateQuantile(0.5);
  ASSERT_TRUE(est.ok());
  EXPECT_LE(PointRerA(truth, *est, truth.TargetRank(0.5)), 2.0 + 0.01);
}

// ------------------------------------------------------------------ KLL ----

TEST(KllTest, MemoryStaysLogarithmic) {
  KllEstimator<uint64_t> kll(256, 3);
  for (uint64_t i = 0; i < 500000; ++i) kll.Add(i * 2654435761u % 1000000);
  // Sum of k * (2/3)^i capacities converges to ~3k.
  EXPECT_LE(kll.MemoryElements(), 256u * 4);
  EXPECT_LE(kll.num_levels(), 16u);
}

TEST(KllTest, AccuracyOnUniform) {
  KllEstimator<uint64_t> kll(1024, 5);
  ExpectDectileAccuracy(kll, UniformData(200000), 2.0);
}

TEST(KllTest, AccuracyOnZipf) {
  KllEstimator<uint64_t> kll(1024, 5);
  ExpectDectileAccuracy(kll, ZipfData(200000), 2.0);
}

TEST(KllTest, AccuracyOnSortedInput) {
  KllEstimator<uint64_t> kll(1024, 5);
  std::vector<uint64_t> data(200000);
  std::iota(data.begin(), data.end(), 0);
  ExpectDectileAccuracy(kll, data, 2.0);
}

TEST(KllTest, SmallStreamIsExact) {
  KllEstimator<uint64_t> kll(64, 1);
  for (uint64_t i = 1; i <= 30; ++i) kll.Add(i);
  auto est = kll.EstimateQuantile(0.5);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(*est, 15u);
}

TEST(KllTest, LargerKIsMoreAccurate) {
  auto data = UniformData(300000, 9);
  GroundTruth<uint64_t> truth(data);
  double errors[2];
  size_t idx = 0;
  for (size_t k : {64, 2048}) {
    KllEstimator<uint64_t> kll(k, 7);
    for (uint64_t v : data) kll.Add(v);
    double worst = 0;
    for (double phi : Dectiles()) {
      auto est = kll.EstimateQuantile(phi);
      ASSERT_TRUE(est.ok());
      worst = std::max(worst,
                       PointRerA(truth, *est, truth.TargetRank(phi)));
    }
    errors[idx++] = worst;
  }
  EXPECT_LT(errors[1], errors[0]);
}

TEST(KllTest, NoDataFails) {
  KllEstimator<uint64_t> kll(64, 1);
  EXPECT_FALSE(kll.EstimateQuantile(0.5).ok());
  kll.Add(1);
  EXPECT_FALSE(kll.EstimateQuantile(1.5).ok());
}

// ------------------------------------------------------------- t-Digest ----

TEST(TDigestTest, CentroidCountStaysBounded) {
  TDigest<uint64_t> td(100);
  for (uint64_t i = 0; i < 500000; ++i) td.Add(i * 2654435761u % 1000000);
  // The k1 scale function bounds live centroids at roughly 2*delta.
  EXPECT_LE(td.num_centroids(), 300u);
  EXPECT_EQ(td.count(), 500000u);
}

TEST(TDigestTest, AccuracyOnUniform) {
  TDigest<uint64_t> td(200);
  ExpectDectileAccuracy(td, UniformData(200000), 2.0);
}

TEST(TDigestTest, AccuracyOnZipf) {
  TDigest<uint64_t> td(200);
  ExpectDectileAccuracy(td, ZipfData(200000), 2.0);
}

TEST(TDigestTest, SmallStreamMedianIsClose) {
  TDigest<uint64_t> td;
  for (uint64_t i = 1; i <= 101; ++i) td.Add(i);
  auto est = td.EstimateQuantile(0.5);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(static_cast<double>(*est), 51.0, 2.0);
}

TEST(TDigestTest, MergeMatchesSingleStreamAccuracy) {
  // The mergeability claim (Dunning & Ertl §3): sketch shards separately,
  // merge, and the merged digest answers like a single-stream one. Mirrors
  // OPAQ's associative SampleList merge, but without the deterministic bound.
  auto data = UniformData(120000, 33);
  GroundTruth<uint64_t> truth(data);
  TDigest<uint64_t> merged(150);
  for (size_t shard = 0; shard < 4; ++shard) {
    TDigest<uint64_t> part(150);
    for (size_t i = shard * 30000; i < (shard + 1) * 30000; ++i) {
      part.Add(data[i]);
    }
    merged.Merge(part);
  }
  EXPECT_EQ(merged.count(), data.size());
  for (double phi : Dectiles()) {
    auto est = merged.EstimateQuantile(phi);
    ASSERT_TRUE(est.ok());
    EXPECT_LE(PointRerA(truth, *est, truth.TargetRank(phi)), 2.5)
        << "phi=" << phi;
  }
}

TEST(TDigestTest, WindowedRingOfDigests) {
  // The windowed-session pattern with t-Digest as the per-window summary:
  // keep a ring of per-window digests, answer "quantile over the last N
  // windows" by merging the survivors — the same shape WindowedSession<K>
  // gives OPAQ sample lists, exercising Merge under eviction.
  const size_t kWindows = 6, kCapacity = 3, kPerWindow = 20000;
  std::deque<TDigest<uint64_t>> ring;
  std::vector<uint64_t> all;
  for (size_t w = 0; w < kWindows; ++w) {
    auto data = UniformData(kPerWindow, 100 + w);
    TDigest<uint64_t> td(150);
    for (uint64_t v : data) td.Add(v);
    if (ring.size() == kCapacity) ring.pop_front();
    ring.push_back(std::move(td));
    all.insert(all.end(), data.begin(), data.end());
  }
  // Ground truth over the surviving windows only.
  GroundTruth<uint64_t> truth(std::vector<uint64_t>(
      all.begin() + (kWindows - kCapacity) * kPerWindow, all.end()));
  TDigest<uint64_t> merged(150);
  for (const auto& td : ring) merged.Merge(td);
  EXPECT_EQ(merged.count(), kCapacity * kPerWindow);
  for (double phi : Dectiles()) {
    auto est = merged.EstimateQuantile(phi);
    ASSERT_TRUE(est.ok());
    EXPECT_LE(PointRerA(truth, *est, truth.TargetRank(phi)), 2.5)
        << "phi=" << phi;
  }
}

TEST(TDigestTest, NoDataFailsAndBadPhiRejected) {
  TDigest<uint64_t> td;
  EXPECT_FALSE(td.EstimateQuantile(0.5).ok());
  td.Add(1);
  EXPECT_FALSE(td.EstimateQuantile(0.0).ok());
  EXPECT_FALSE(td.EstimateQuantile(1.5).ok());
}

// ------------------------------------------------------------ Frugal-1U ----
//
// Frugal-1U moves its single-word estimate one unit per step, so it only
// works on narrow domains (the 2014 paper's own experiments use small
// integer domains); these tests keep values in [0, 1000] and feed enough
// stream for the random walk to reach its stationary point.

std::vector<uint64_t> NarrowDomainData(uint64_t n, uint64_t seed) {
  std::vector<uint64_t> data = UniformData(n, seed);
  for (uint64_t& v : data) v %= 1000;
  return data;
}

TEST(FrugalTest, ConvergesToMedianOnNarrowDomain) {
  FrugalEstimator<uint64_t> frugal(0.5, 3);
  auto data = NarrowDomainData(400000, 5);
  for (uint64_t v : data) frugal.Add(v);
  GroundTruth<uint64_t> truth(data);
  auto est = frugal.EstimateQuantile(0.5);
  ASSERT_TRUE(est.ok());
  EXPECT_LE(PointRerA(truth, *est, truth.TargetRank(0.5)), 5.0);
}

TEST(FrugalTest, TracksTailQuantile) {
  FrugalEstimator<uint64_t> frugal(0.9, 11);
  auto data = NarrowDomainData(400000, 6);
  for (uint64_t v : data) frugal.Add(v);
  GroundTruth<uint64_t> truth(data);
  auto est = frugal.EstimateQuantile(0.9);
  ASSERT_TRUE(est.ok());
  EXPECT_LE(PointRerA(truth, *est, truth.TargetRank(0.9)), 5.0);
}

TEST(FrugalTest, UsesExactlyOneMemoryElement) {
  FrugalEstimator<uint64_t> frugal(0.5);
  for (uint64_t i = 0; i < 100000; ++i) frugal.Add(i % 1000);
  EXPECT_EQ(frugal.MemoryElements(), 1u);
  EXPECT_EQ(frugal.count(), 100000u);
}

TEST(FrugalTest, RejectsUnregisteredPhi) {
  FrugalEstimator<uint64_t> frugal(0.5);
  frugal.Add(1);
  EXPECT_FALSE(frugal.EstimateQuantile(0.25).ok());
  EXPECT_TRUE(frugal.EstimateQuantile(0.5).ok());
}

TEST(FrugalTest, NoDataFails) {
  FrugalEstimator<uint64_t> frugal(0.5);
  EXPECT_FALSE(frugal.EstimateQuantile(0.5).ok());
}

// ---------------------------------------------- Rank-error property sweep --
//
// Each baseline advertises a rank-error story; these sweeps assert it over
// randomized inputs (several seeds x distributions x sizes, all
// deterministic) against exact ground truth, at a finer phi grid than the
// dectile spot checks above. Thresholds:
//   - GK: eps*n ranks, DETERMINISTIC — asserted at the advertised eps with
//     only a duplicate-tie epsilon of slack.
//   - KLL: eps*n with eps = O(1/k), probabilistic — asserted at a bound
//     that holds comfortably for the fixed sweep seeds.
//   - Reservoir: +-O(sqrt(phi(1-phi)/capacity)) ranks w.h.p. — asserted at
//     ~5 standard deviations for the fixed sweep seeds.
//   - P2: no guarantee at all; a loose sanity bound on smooth inputs only.

std::vector<double> SweepPhis() {
  std::vector<double> out{0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99};
  for (double d : Dectiles()) out.push_back(d);
  return out;
}

std::vector<uint64_t> SweepData(Distribution distribution, uint64_t n,
                                uint64_t seed) {
  DatasetSpec spec;
  spec.n = n;
  spec.seed = seed;
  spec.distribution = distribution;
  return GenerateDataset<uint64_t>(spec);
}

constexpr Distribution kSweepDistributions[] = {
    Distribution::kUniform, Distribution::kZipf, Distribution::kNormal,
    Distribution::kSequential, Distribution::kSawtooth};

// Worst rank error (percent of n) of `estimator` over the phi grid.
template <typename Estimator>
double WorstRankErrorPct(Estimator& estimator,
                         const std::vector<uint64_t>& data) {
  for (uint64_t v : data) estimator.Add(v);
  GroundTruth<uint64_t> truth(data);
  double worst = 0;
  for (double phi : SweepPhis()) {
    auto est = estimator.EstimateQuantile(phi);
    OPAQ_CHECK_OK(est.status());
    worst = std::max(worst, PointRerA(truth, *est, truth.TargetRank(phi)));
  }
  return worst;
}

TEST(BaselinePropertyTest, GkMeetsItsDeterministicEpsilonEverywhere) {
  // The GK invariant g + delta <= 2*eps*n is distribution-free and holds
  // for every prefix of every stream: the advertised bound, not a looser
  // stand-in, must hold on every sweep point (eps*100 in percent; +0.01 for
  // rank ties among duplicates).
  for (double eps : {0.05, 0.01}) {
    for (Distribution distribution : kSweepDistributions) {
      for (uint64_t seed : {1u, 17u, 4242u}) {
        GkEstimator<uint64_t> gk(eps);
        double worst =
            WorstRankErrorPct(gk, SweepData(distribution, 60000, seed));
        EXPECT_LE(worst, eps * 100 + 0.01)
            << "eps=" << eps << " dist=" << static_cast<int>(distribution)
            << " seed=" << seed;
      }
    }
  }
}

TEST(BaselinePropertyTest, GkHoldsMidStreamToo) {
  // The guarantee is an *anytime* bound: check it at several prefixes of
  // one stream, not just at the end.
  const double eps = 0.02;
  auto data = SweepData(Distribution::kZipf, 50000, 7);
  GkEstimator<uint64_t> gk(eps);
  size_t consumed = 0;
  for (size_t checkpoint : {1000u, 5000u, 20000u, 50000u}) {
    for (; consumed < checkpoint; ++consumed) gk.Add(data[consumed]);
    GroundTruth<uint64_t> truth(std::vector<uint64_t>(
        data.begin(), data.begin() + static_cast<ptrdiff_t>(checkpoint)));
    for (double phi : SweepPhis()) {
      auto est = gk.EstimateQuantile(phi);
      ASSERT_TRUE(est.ok());
      EXPECT_LE(PointRerA(truth, *est, truth.TargetRank(phi)),
                eps * 100 + 0.01)
          << "prefix=" << checkpoint << " phi=" << phi;
    }
  }
}

TEST(BaselinePropertyTest, KllMeetsItsAdvertisedBound) {
  // k=1024 targets eps ~ O(1/k); empirically well under 1% — assert 2%,
  // still far below what a broken compactor would produce (the probability
  // story is exercised by sweeping seeds for both the data and the sketch).
  for (Distribution distribution : kSweepDistributions) {
    for (uint64_t seed : {1u, 17u, 4242u}) {
      KllEstimator<uint64_t> kll(1024, seed * 31 + 5);
      double worst =
          WorstRankErrorPct(kll, SweepData(distribution, 60000, seed));
      EXPECT_LE(worst, 2.0)
          << "dist=" << static_cast<int>(distribution) << " seed=" << seed;
    }
  }
}

TEST(BaselinePropertyTest, ReservoirStaysWithinSamplingError) {
  // capacity 4000 => stddev <= 100*sqrt(0.25/4000) ~ 0.79% of n at the
  // median, less at the tails; 4% ~ 5 sigma, comfortable for fixed seeds
  // yet far below the systematic bias a broken reservoir would show.
  for (Distribution distribution : kSweepDistributions) {
    for (uint64_t seed : {1u, 17u, 4242u}) {
      ReservoirSampleEstimator<uint64_t> reservoir(4000, seed * 13 + 1);
      double worst =
          WorstRankErrorPct(reservoir, SweepData(distribution, 60000, seed));
      EXPECT_LE(worst, 4.0)
          << "dist=" << static_cast<int>(distribution) << " seed=" << seed;
    }
  }
}

TEST(BaselinePropertyTest, TDigestStaysAccurateAcrossSweep) {
  // t-Digest's accuracy is empirical, not deterministic (its k1 scale
  // function favours the tails); compression 200 lands comfortably under 2%
  // worst-case rank error across the sweep grid — a broken scale function
  // or merge pass blows well past this.
  for (Distribution distribution : kSweepDistributions) {
    for (uint64_t seed : {1u, 17u, 4242u}) {
      TDigest<uint64_t> td(200);
      double worst =
          WorstRankErrorPct(td, SweepData(distribution, 60000, seed));
      EXPECT_LE(worst, 2.0)
          << "dist=" << static_cast<int>(distribution) << " seed=" << seed;
    }
  }
}

TEST(BaselinePropertyTest, P2StaysSaneOnSmoothDistributions) {
  // P2 has NO error guarantee (the paper's point about [RC85]); on smooth
  // unimodal inputs it should still land within a few percent. Skewed/
  // piecewise inputs are deliberately excluded — there it can be
  // arbitrarily wrong, which Table 7 demonstrates rather than asserts.
  for (Distribution distribution :
       {Distribution::kUniform, Distribution::kNormal}) {
    for (uint64_t seed : {1u, 17u, 4242u}) {
      P2Estimator<uint64_t> p2(SweepPhis());
      double worst =
          WorstRankErrorPct(p2, SweepData(distribution, 60000, seed));
      EXPECT_LE(worst, 5.0)
          << "dist=" << static_cast<int>(distribution) << " seed=" << seed;
    }
  }
}

// -------------------------------------- Polymorphic use through the base --

TEST(EstimatorInterfaceTest, WorksThroughBasePointer) {
  std::vector<std::unique_ptr<StreamingQuantileEstimator<uint64_t>>> all;
  all.push_back(std::make_unique<ReservoirSampleEstimator<uint64_t>>(500, 1));
  all.push_back(std::make_unique<As95HistogramEstimator<uint64_t>>(500));
  all.push_back(std::make_unique<P2Estimator<uint64_t>>(Dectiles()));
  all.push_back(std::make_unique<MunroPatersonEstimator<uint64_t>>(500));
  all.push_back(std::make_unique<GkEstimator<uint64_t>>(0.02));
  all.push_back(std::make_unique<KllEstimator<uint64_t>>(512, 4));
  all.push_back(std::make_unique<TDigest<uint64_t>>(150));
  all.push_back(std::make_unique<FrugalEstimator<uint64_t>>(0.5, 9));

  // Narrow domain so Frugal-1U's one-unit random walk can reach the median
  // inside the stream; the other estimators are domain-agnostic.
  auto data = NarrowDomainData(30000, 1);
  GroundTruth<uint64_t> truth(data);
  for (auto& estimator : all) {
    for (uint64_t v : data) estimator->Add(v);
    EXPECT_EQ(estimator->count(), data.size()) << estimator->name();
    auto est = estimator->EstimateQuantile(0.5);
    ASSERT_TRUE(est.ok()) << estimator->name();
    EXPECT_LE(PointRerA(truth, *est, truth.TargetRank(0.5)), 10.0)
        << estimator->name();
    EXPECT_GT(estimator->MemoryElements(), 0u);
    EXPECT_FALSE(estimator->name().empty());
  }
}

}  // namespace
}  // namespace opaq
