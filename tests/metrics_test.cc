// Unit tests for src/metrics: ground truth order statistics and the paper's
// RER_A / RER_L / RER_N error measures on hand-computed cases.

#include <gtest/gtest.h>

#include <numeric>

#include "core/opaq.h"
#include "data/dataset.h"
#include "metrics/ground_truth.h"
#include "metrics/rer.h"

namespace opaq {
namespace {

// ------------------------------------------------------------ GroundTruth --

TEST(GroundTruthTest, RanksWithDuplicates) {
  GroundTruth<int> truth({5, 3, 5, 1, 5, 9});
  // sorted: 1 3 5 5 5 9
  EXPECT_EQ(truth.n(), 6u);
  EXPECT_EQ(truth.RankLt(5), 2u);
  EXPECT_EQ(truth.RankLe(5), 5u);
  EXPECT_EQ(truth.CountEqual(5), 3u);
  EXPECT_EQ(truth.RankLt(0), 0u);
  EXPECT_EQ(truth.RankLe(100), 6u);
}

TEST(GroundTruthTest, ValueAtRankIsSortedOrder) {
  GroundTruth<int> truth({4, 2, 8, 6});
  EXPECT_EQ(truth.ValueAtRank(1), 2);
  EXPECT_EQ(truth.ValueAtRank(4), 8);
}

TEST(GroundTruthTest, QuantileUsesCeilConvention) {
  std::vector<int> v(10);
  std::iota(v.begin(), v.end(), 1);  // 1..10
  GroundTruth<int> truth(v);
  EXPECT_EQ(truth.Quantile(0.1), 1);   // ceil(1) = rank 1
  EXPECT_EQ(truth.Quantile(0.15), 2);  // ceil(1.5) = rank 2
  EXPECT_EQ(truth.Quantile(0.5), 5);
  EXPECT_EQ(truth.Quantile(1.0), 10);
  EXPECT_EQ(truth.TargetRank(0.5), 5u);
}

TEST(GroundTruthTest, CountInClosedRange) {
  GroundTruth<int> truth({1, 2, 2, 3, 4});
  EXPECT_EQ(truth.CountInClosedRange(2, 3), 3u);
  EXPECT_EQ(truth.CountInClosedRange(1, 4), 5u);
  EXPECT_EQ(truth.CountInClosedRange(2, 2), 2u);
}

TEST(GroundTruthTest, FromFileMatchesInMemory) {
  DatasetSpec spec;
  spec.n = 1000;
  auto data = GenerateDataset<uint64_t>(spec);
  MemoryBlockDevice dev;
  ASSERT_TRUE(WriteDataset(data, &dev).ok());
  auto file = TypedDataFile<uint64_t>::Open(&dev);
  ASSERT_TRUE(file.ok());
  auto truth = GroundTruth<uint64_t>::FromFile(&*file);
  ASSERT_TRUE(truth.ok());
  GroundTruth<uint64_t> direct(data);
  EXPECT_EQ(truth->sorted(), direct.sorted());
}

// -------------------------------------------------------------- RER maths --

// Helper: hand-built estimate.
QuantileEstimate<int> MakeEstimate(uint64_t psi, int lower, int upper,
                                   uint64_t budget = 1000) {
  QuantileEstimate<int> e;
  e.target_rank = psi;
  e.lower = lower;
  e.upper = upper;
  e.lower_index = 1;
  e.upper_index = 1;
  e.max_rank_error = budget;
  return e;
}

TEST(RerTest, PerfectEstimateScoresZero) {
  // Data 1..100; exact dectile estimates.
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 1);
  GroundTruth<int> truth(v);
  std::vector<QuantileEstimate<int>> estimates;
  for (int d = 1; d <= 9; ++d) {
    int t = truth.Quantile(d / 10.0);
    estimates.push_back(MakeEstimate(d * 10, t, t));
  }
  auto report = ComputeRer(truth, estimates, 10);
  for (double a : report.rer_a) EXPECT_DOUBLE_EQ(a, 0.0);
  EXPECT_DOUBLE_EQ(report.rer_l, 0.0);
  EXPECT_DOUBLE_EQ(report.rer_n, 0.0);
}

TEST(RerTest, KnownOffsetGivesKnownRera) {
  // Data 1..100, median estimate bracket [48, 53]: 6 elements inside, 1
  // duplicate of the true median (50) => RER_A = 5/100*100 = 5%.
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 1);
  GroundTruth<int> truth(v);
  std::vector<QuantileEstimate<int>> estimates;
  for (int d = 1; d <= 9; ++d) {
    int t = truth.Quantile(d / 10.0);
    if (d == 5) {
      estimates.push_back(MakeEstimate(50, 48, 53));
    } else {
      estimates.push_back(MakeEstimate(d * 10, t, t));
    }
  }
  auto report = ComputeRer(truth, estimates, 10);
  EXPECT_DOUBLE_EQ(report.rer_a[4], 5.0);
  EXPECT_DOUBLE_EQ(report.rer_a[0], 0.0);
}

TEST(RerTest, RerNMeasuresWorstBoundDistance) {
  // Median bounds [48, 54] on 1..100 with q=10 segments of 10. Using the
  // documented conventions, DL = psi - rank_le(48) = 2 and
  // DU = rank_lt(54) - psi = 3, so RER_N = 3/10*100 = 30%.
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 1);
  GroundTruth<int> truth(v);
  std::vector<QuantileEstimate<int>> estimates;
  for (int d = 1; d <= 9; ++d) {
    int t = truth.Quantile(d / 10.0);
    if (d == 5) {
      estimates.push_back(MakeEstimate(50, t - 2, t + 4));
    } else {
      estimates.push_back(MakeEstimate(d * 10, t, t));
    }
  }
  auto report = ComputeRer(truth, estimates, 10);
  EXPECT_DOUBLE_EQ(report.rer_n, 30.0);
}

TEST(RerTest, RerLMeasuresSegmentDistortion) {
  // Only the 5th dectile's lower bound drifts 4 ranks down: the segment
  // (q4,q5) shrinks by 4 and (q5,q6) grows by 4 => RER_L = 4/10*100 = 40%.
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 1);
  GroundTruth<int> truth(v);
  std::vector<QuantileEstimate<int>> estimates;
  for (int d = 1; d <= 9; ++d) {
    int t = truth.Quantile(d / 10.0);
    if (d == 5) {
      estimates.push_back(MakeEstimate(50, t - 4, t));
    } else {
      estimates.push_back(MakeEstimate(d * 10, t, t));
    }
  }
  auto report = ComputeRer(truth, estimates, 10);
  EXPECT_DOUBLE_EQ(report.rer_l, 40.0);
}

TEST(RerTest, DuplicatesOfTrueQuantileDoNotCount) {
  // All elements equal: bracket trivially [7,7]; N_e = N_t => RER_A = 0.
  std::vector<int> v(50, 7);
  GroundTruth<int> truth(v);
  std::vector<QuantileEstimate<int>> estimates;
  for (int d = 1; d <= 9; ++d) {
    estimates.push_back(MakeEstimate(truth.TargetRank(d / 10.0), 7, 7));
  }
  auto report = ComputeRer(truth, estimates, 10);
  for (double a : report.rer_a) EXPECT_DOUBLE_EQ(a, 0.0);
  EXPECT_DOUBLE_EQ(report.rer_n, 0.0);
}

TEST(RerTest, MaxRerAHelper) {
  RerReport<int> r;
  r.rer_a = {0.1, 0.5, 0.3};
  EXPECT_DOUBLE_EQ(r.max_rer_a(), 0.5);
}

// ----------------------------------------------------------- PointRerA ----

TEST(PointRerATest, ExactValueScoresZero) {
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 1);
  GroundTruth<int> truth(v);
  EXPECT_DOUBLE_EQ(PointRerA(truth, 50, 50), 0.0);
}

TEST(PointRerATest, OffsetScoresRankDistance) {
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 1);
  GroundTruth<int> truth(v);
  // Value 55 has rank 55; target rank 50 => distance 5 => 5%.
  EXPECT_DOUBLE_EQ(PointRerA(truth, 55, 50), 5.0);
  EXPECT_DOUBLE_EQ(PointRerA(truth, 45, 50), 5.0);
}

TEST(PointRerATest, DuplicateOfTargetScoresZero) {
  std::vector<int> v{1, 5, 5, 5, 9};
  GroundTruth<int> truth(v);
  // Target rank 3 (value 5); value 5 claims ranks 2..4 => 0.
  EXPECT_DOUBLE_EQ(PointRerA(truth, 5, 3), 0.0);
  EXPECT_DOUBLE_EQ(PointRerA(truth, 5, 2), 0.0);
}

TEST(PointRerATest, AbsentValueUsesInsertionPoint) {
  std::vector<int> v{10, 20, 30, 40};
  GroundTruth<int> truth(v);
  // 25 inserts at rank_le = 2; target 2 => 0 distance.
  EXPECT_DOUBLE_EQ(PointRerA(truth, 25, 2), 0.0);
  // Target 4 => distance 2 => 50%.
  EXPECT_DOUBLE_EQ(PointRerA(truth, 25, 4), 50.0);
}

// --------------------------------------------------------- BracketHolds ----

TEST(BracketHoldsTest, DetectsViolations) {
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 1);
  GroundTruth<int> truth(v);
  // Correct bracket.
  EXPECT_TRUE(BracketHolds(truth, MakeEstimate(50, 48, 52, 10)));
  // Lower bound above the truth.
  EXPECT_FALSE(BracketHolds(truth, MakeEstimate(50, 51, 60, 10)));
  // Upper bound below the truth.
  EXPECT_FALSE(BracketHolds(truth, MakeEstimate(50, 40, 49, 10)));
  // Bounds fine but rank error beyond the budget.
  EXPECT_FALSE(BracketHolds(truth, MakeEstimate(50, 30, 50, 10)));
  // Clamped flags exempt the corresponding side.
  QuantileEstimate<int> clamped = MakeEstimate(50, 99, 100, 10);
  clamped.lower_clamped = true;
  EXPECT_FALSE(BracketHolds(truth, clamped));  // upper 100 >= 50 ok, but
  clamped.upper = 50;
  clamped.max_rank_error = 1000;
  EXPECT_TRUE(BracketHolds(truth, clamped));
}

// ------------------------------------------ End-to-end RER sanity (paper) --

TEST(RerEndToEndTest, OpaqRerWithinPaperBounds) {
  // Paper §2.4: RER_A <= 2/s*100, RER_L <= ~2q/s*100, RER_N <= ~2q/s*100.
  DatasetSpec spec;
  spec.n = 100000;
  spec.distribution = Distribution::kZipf;
  auto data = GenerateDataset<uint64_t>(spec);
  OpaqConfig config;
  config.run_size = 10000;
  config.samples_per_run = 500;
  OpaqEstimator<uint64_t> est = EstimateQuantilesInMemory(data, config);
  GroundTruth<uint64_t> truth(data);
  auto report = ComputeRer(truth, est.EquiQuantiles(10), 10);
  const double s = 500;
  EXPECT_LE(report.max_rer_a(), 2.0 / s * 100.0 + 1e-9);
  EXPECT_LE(report.rer_l, 2.0 * 10 / s * 100.0 + 1e-9);
  EXPECT_LE(report.rer_n, 2.0 * 10 / s * 100.0 + 1e-9);
}

}  // namespace
}  // namespace opaq
