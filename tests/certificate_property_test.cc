// Property test for the Lemma 1-3 error certificates: for random
// configurations, data shapes, and query points, the estimator's
// [lower, upper] bracket must contain the true quantile whenever neither
// bound was clamped, and the advertised rank-error budget must respect the
// paper's n/s bound (plus the uncovered-tail generalisation for
// non-divisible n).

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/opaq.h"
#include "data/dataset.h"
#include "metrics/ground_truth.h"
#include "util/random.h"

namespace opaq {
namespace {

struct SweepCase {
  OpaqConfig config;
  DatasetSpec spec;
};

// Draws a random but valid configuration: samples_per_run must divide
// run_size (OpaqConfig contract), everything else is free.
SweepCase DrawCase(Xoshiro256& rng) {
  static const uint64_t kRunSizes[] = {64, 256, 500, 1024, 4096};
  static const Distribution kDists[] = {
      Distribution::kUniform,       Distribution::kZipf,
      Distribution::kNormal,        Distribution::kSequential,
      Distribution::kReverseSequential, Distribution::kConstant,
      Distribution::kSawtooth};
  static const SelectAlgorithm kSelects[] = {
      SelectAlgorithm::kIntroSelect, SelectAlgorithm::kFloydRivest,
      SelectAlgorithm::kMedianOfMedians, SelectAlgorithm::kStdNthElement};

  SweepCase c;
  c.config.run_size = kRunSizes[rng.NextBounded(5)];
  // Pick a divisor of run_size as s by drawing a sub-run size.
  uint64_t subrun = 1 + rng.NextBounded(16);
  while (c.config.run_size % subrun != 0) --subrun;
  c.config.samples_per_run = c.config.run_size / subrun;
  c.config.select_algorithm = kSelects[rng.NextBounded(4)];
  c.config.seed = rng.Next();

  c.spec.distribution = kDists[rng.NextBounded(7)];
  c.spec.seed = rng.Next();
  // Mix of divisible (whole runs) and ragged n, including n < run_size.
  c.spec.n = 1 + rng.NextBounded(8 * c.config.run_size);
  if (rng.NextBounded(2) == 0) {
    c.spec.n = c.config.run_size * (1 + rng.NextBounded(8));
  }
  return c;
}

TEST(CertificatePropertyTest, BoundsBracketTruthAcrossRandomConfigs) {
  Xoshiro256 rng(20260729);
  const double kPhis[] = {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0};
  for (int iter = 0; iter < 60; ++iter) {
    SweepCase c = DrawCase(rng);
    ASSERT_TRUE(c.config.Validate().ok()) << c.config.ToString();
    std::vector<uint64_t> data = GenerateDataset<uint64_t>(c.spec);
    GroundTruth<uint64_t> truth(data);
    OpaqEstimator<uint64_t> est = EstimateQuantilesInMemory(data, c.config);
    ASSERT_EQ(est.total_elements(), c.spec.n);

    const SampleAccounting& acc = est.sample_list().accounting();
    // Lemma 3 budget: exactly the documented c + (R-1)(c-1) + U, which a
    // ragged tail run can push at most one sub-run past n/s + U; in the
    // paper's divisible setting it is bounded by n/s itself.
    EXPECT_EQ(est.max_rank_error(),
              acc.subrun_size +
                  (acc.num_runs - 1) * (acc.subrun_size - 1) +
                  acc.num_uncovered)
        << c.config.ToString() << " over " << c.spec.ToString();
    const uint64_t n_over_s =
        (c.spec.n + c.config.samples_per_run - 1) / c.config.samples_per_run;
    EXPECT_LE(est.max_rank_error(),
              n_over_s + acc.subrun_size + acc.num_uncovered)
        << c.config.ToString() << " over " << c.spec.ToString();
    if (c.spec.n % c.config.run_size == 0) {
      EXPECT_EQ(acc.num_uncovered, 0u);
      EXPECT_LE(est.max_rank_error(), c.spec.n / c.config.samples_per_run);
    }

    for (double phi : kPhis) {
      QuantileEstimate<uint64_t> q = est.Quantile(phi);
      const uint64_t true_q = truth.Quantile(phi);
      if (!q.lower_clamped) {
        EXPECT_LE(q.lower, true_q)
            << "phi=" << phi << " " << c.config.ToString() << " over "
            << c.spec.ToString();
      }
      if (!q.upper_clamped) {
        EXPECT_GE(q.upper, true_q)
            << "phi=" << phi << " " << c.config.ToString() << " over "
            << c.spec.ToString();
      }
      // Certified bounds must additionally be within the rank budget of
      // the target: the element ranks covered by [lower, upper] stay
      // within max_rank_error of psi.
      if (!q.lower_clamped) {
        EXPECT_GE(truth.RankLe(q.lower),
                  q.target_rank > q.max_rank_error
                      ? q.target_rank - q.max_rank_error
                      : 0u);
      }
      if (!q.upper_clamped) {
        EXPECT_LE(truth.RankLt(q.upper), q.target_rank + q.max_rank_error);
      }
    }

    // Rank brackets (paper §4) must contain the true rank for random probes.
    for (int probe = 0; probe < 8; ++probe) {
      uint64_t v = data[rng.NextBounded(data.size())];
      RankEstimate r = est.EstimateRank(v);
      EXPECT_LE(r.min_rank_le, truth.RankLe(v));
      EXPECT_GE(r.max_rank_le, truth.RankLe(v));
      EXPECT_LE(r.min_rank_lt, truth.RankLt(v));
      EXPECT_GE(r.max_rank_lt, truth.RankLt(v));
    }
  }
}

}  // namespace
}  // namespace opaq
