// End-to-end integration tests: the full disk pipeline (generate -> write to
// a throttled file device -> one-pass sketch -> quantile/rank queries ->
// exact second pass), scored against ground truth and the paper's bounds;
// plus cross-module consistency checks between the sequential, incremental
// and parallel paths.

#include <gtest/gtest.h>

#include <tuple>

#include "apps/equi_depth_histogram.h"
#include "apps/range_partitioner.h"
#include "apps/selectivity.h"
#include "core/exact.h"
#include "core/opaq.h"
#include "core/sketch_io.h"
#include "data/dataset.h"
#include "io/tempdir.h"
#include "io/throttled_device.h"
#include "metrics/ground_truth.h"
#include "metrics/rer.h"
#include "parallel/parallel_opaq.h"

namespace opaq {
namespace {

// ------------------------------------------- full pipeline on real files --

class DiskPipelineTest
    : public ::testing::TestWithParam<std::tuple<Distribution, uint64_t>> {};

TEST_P(DiskPipelineTest, OnePassOverRealFileMeetsPaperBounds) {
  const Distribution distribution = std::get<0>(GetParam());
  const uint64_t n = std::get<1>(GetParam());

  auto dir = TempDir::Make();
  ASSERT_TRUE(dir.ok());
  auto raw = FileBlockDevice::Make(dir->FilePath("data.opaq"),
                                   FileBlockDevice::Mode::kCreate);
  ASSERT_TRUE(raw.ok());
  // Throttle in accounting mode: exercises the wrapper without slowing CI.
  ThrottledDevice device(std::move(*raw), DiskModel(),
                         ThrottledDevice::Mode::kAccount);

  DatasetSpec spec;
  spec.n = n;
  spec.distribution = distribution;
  spec.seed = 99;
  std::vector<uint64_t> data = GenerateDataset<uint64_t>(spec);
  ASSERT_TRUE(WriteDataset(data, &device).ok());
  auto file = TypedDataFile<uint64_t>::Open(&device);
  ASSERT_TRUE(file.ok());

  OpaqConfig config;
  config.run_size = 1 << 14;
  config.samples_per_run = 256;
  OpaqSketch<uint64_t> sketch(config);
  double io_seconds = 0;
  ASSERT_TRUE(sketch.Consume(FileRunProvider<uint64_t>(&*file), &io_seconds).ok());
  OpaqEstimator<uint64_t> est = sketch.Finalize();
  EXPECT_GT(device.modeled_seconds(), 0.0);

  GroundTruth<uint64_t> truth(data);
  auto estimates = est.EquiQuantiles(10);
  auto report = ComputeRer(truth, estimates, 10);
  // Paper bounds: RER_A <= 200/s (plus tail-run slack), all brackets hold.
  const double s_eff = static_cast<double>(config.samples_per_run);
  EXPECT_LE(report.max_rer_a(), 2.0 * 100.0 / s_eff * 1.5);
  for (const auto& e : estimates) {
    EXPECT_TRUE(BracketHolds(truth, e));
  }

  // Exact values for all dectiles via one extra pass.
  auto exact = ExactQuantilesSecondPass(FileRunProvider<uint64_t>(&*file),
                                        estimates, config.read_options(), n);
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  for (int d = 1; d <= 9; ++d) {
    EXPECT_EQ((*exact)[d - 1], truth.Quantile(d / 10.0)) << d;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DiskPipelineTest,
    ::testing::Combine(
        ::testing::Values(Distribution::kUniform, Distribution::kZipf,
                          Distribution::kNormal, Distribution::kSequential,
                          Distribution::kSawtooth),
        ::testing::Values(uint64_t{65536}, uint64_t{200000})),
    [](const auto& info) {
      return std::string(DistributionName(std::get<0>(info.param))) + "_n" +
             std::to_string(std::get<1>(info.param));
    });

// ------------------------------------- sequential == parallel == merged --

TEST(ConsistencyTest, ThreePathsAgreeOnSampleList) {
  // The same logical dataset split as (a) one sequential pass, (b) an
  // incremental two-sketch merge, (c) a 2-processor parallel run must yield
  // the same global sample multiset and the same accounting.
  const uint64_t half = 40000;
  DatasetSpec spec_a;
  spec_a.n = half;
  spec_a.seed = 1;
  DatasetSpec spec_b;
  spec_b.n = half;
  spec_b.seed = 2;
  auto data_a = GenerateDataset<uint64_t>(spec_a);
  auto data_b = GenerateDataset<uint64_t>(spec_b);
  std::vector<uint64_t> all = data_a;
  all.insert(all.end(), data_b.begin(), data_b.end());

  OpaqConfig config;
  config.run_size = 4000;
  config.samples_per_run = 200;

  // (a) sequential over the concatenation.
  OpaqEstimator<uint64_t> sequential = EstimateQuantilesInMemory(all, config);

  // (b) two sketches merged.
  auto merged = SampleList<uint64_t>::Merge(
      EstimateQuantilesInMemory(data_a, config).sample_list(),
      EstimateQuantilesInMemory(data_b, config).sample_list());
  ASSERT_TRUE(merged.ok());

  // (c) parallel with 2 processors.
  MemoryBlockDevice dev_a, dev_b;
  ASSERT_TRUE(WriteDataset(data_a, &dev_a).ok());
  ASSERT_TRUE(WriteDataset(data_b, &dev_b).ok());
  auto file_a = TypedDataFile<uint64_t>::Open(&dev_a);
  auto file_b = TypedDataFile<uint64_t>::Open(&dev_b);
  ASSERT_TRUE(file_a.ok());
  ASSERT_TRUE(file_b.ok());
  Cluster::Options cluster_options;
  cluster_options.num_processors = 2;
  Cluster cluster(cluster_options);
  ParallelOpaqOptions parallel_options;
  parallel_options.config = config;
  FileRunProvider<uint64_t> provider_a(&*file_a), provider_b(&*file_b);
  std::vector<const RunProvider<uint64_t>*> parallel_files{&provider_a,
                                                           &provider_b};
  auto parallel =
      RunParallelOpaq<uint64_t>(cluster, parallel_files, parallel_options);
  ASSERT_TRUE(parallel.ok());

  // Sample lists agree (a vs b) and accountings agree (all three).
  EXPECT_EQ(sequential.sample_list().samples(), merged->samples());
  EXPECT_EQ(sequential.sample_list().accounting().num_samples,
            parallel->global_accounting.num_samples);
  EXPECT_EQ(sequential.sample_list().accounting().num_runs,
            parallel->global_accounting.num_runs);
  EXPECT_EQ(sequential.sample_list().accounting().total_elements,
            parallel->global_accounting.total_elements);

  // And the quantile answers agree between sequential and parallel.
  for (int d = 1; d <= 9; ++d) {
    auto seq = sequential.Quantile(d / 10.0);
    const auto& par = parallel->estimates[d - 1];
    EXPECT_EQ(seq.lower, par.lower) << d;
    EXPECT_EQ(seq.upper, par.upper) << d;
  }
}

// -------------------------------------------------- apps over the sketch --

TEST(ApplicationIntegrationTest, HistogramSelectivityPartitionerConsistent) {
  DatasetSpec spec;
  spec.n = 120000;
  spec.distribution = Distribution::kZipf;
  spec.zipf_z = 0.7;
  auto data = GenerateDataset<uint64_t>(spec);
  OpaqConfig config;
  config.run_size = 12000;
  config.samples_per_run = 600;
  OpaqEstimator<uint64_t> est = EstimateQuantilesInMemory(data, config);
  GroundTruth<uint64_t> truth(data);

  // Histogram boundaries bracket their true quantiles.
  auto hist = EquiDepthHistogram<uint64_t>::Build(est, 12);
  for (size_t i = 0; i < hist.boundaries().size(); ++i) {
    EXPECT_TRUE(BracketHolds(truth, hist.boundaries()[i])) << i;
  }

  // Selectivity brackets across the histogram's own boundaries.
  for (size_t i = 0; i + 1 < hist.boundaries().size(); ++i) {
    uint64_t lo = hist.boundaries()[i].lower;
    uint64_t hi = hist.boundaries()[i + 1].upper;
    auto sel = EstimateRangeSelectivity(est, lo, hi);
    uint64_t true_count = truth.RankLe(hi) - truth.RankLt(lo);
    EXPECT_LE(sel.min_count, true_count);
    EXPECT_GE(sel.max_count, true_count);
  }

  // Partition sizes within the certified ceiling (+ largest dup group).
  auto partitioner = RangePartitioner<uint64_t>::Build(est, 6);
  uint64_t largest_dup = 0;
  for (uint64_t splitter : partitioner.splitters()) {
    largest_dup = std::max(largest_dup, truth.CountEqual(splitter));
  }
  auto counts = partitioner.CountPartitionSizes(data);
  for (uint64_t c : counts) {
    EXPECT_LE(c, partitioner.MaxPartitionSize(largest_dup));
  }
}

// --------------------------------------------- persisted parallel output --

TEST(PersistenceIntegrationTest, ParallelResultSavedAndReloaded) {
  // Sketch two shards in parallel style, merge, save, reload in a "second
  // process", and verify answers over the union.
  DatasetSpec spec;
  spec.n = 60000;
  auto data = GenerateDataset<uint64_t>(spec);
  OpaqConfig config;
  config.run_size = 6000;
  config.samples_per_run = 300;

  std::vector<uint64_t> shard_a(data.begin(), data.begin() + 30000);
  std::vector<uint64_t> shard_b(data.begin() + 30000, data.end());
  auto merged = SampleList<uint64_t>::Merge(
      EstimateQuantilesInMemory(shard_a, config).sample_list(),
      EstimateQuantilesInMemory(shard_b, config).sample_list());
  ASSERT_TRUE(merged.ok());

  auto dir = TempDir::Make();
  ASSERT_TRUE(dir.ok());
  {
    auto dev = FileBlockDevice::Make(dir->FilePath("union.sketch"),
                                     FileBlockDevice::Mode::kCreate);
    ASSERT_TRUE(dev.ok());
    ASSERT_TRUE(SaveSampleList(*merged, dev->get()).ok());
  }
  auto dev = FileBlockDevice::Make(dir->FilePath("union.sketch"),
                                   FileBlockDevice::Mode::kOpen);
  ASSERT_TRUE(dev.ok());
  auto loaded = LoadSampleList<uint64_t>(dev->get());
  ASSERT_TRUE(loaded.ok());
  OpaqEstimator<uint64_t> est(std::move(loaded).value());
  GroundTruth<uint64_t> truth(data);
  for (const auto& e : est.EquiQuantiles(10)) {
    EXPECT_TRUE(BracketHolds(truth, e));
  }
}

}  // namespace
}  // namespace opaq
