// Tests for the quantile-phase index formulas (paper §2.2, formulas (2) and
// (5)) including an exhaustive brute-force cross-check of the guarantees on
// small universes.

#include <gtest/gtest.h>

#include "core/index_math.h"

namespace opaq {
namespace {

SampleAccounting MakeAccounting(uint64_t c, uint64_t runs, uint64_t samples,
                                uint64_t uncovered) {
  SampleAccounting acc;
  acc.subrun_size = c;
  acc.num_runs = runs;
  acc.num_samples = samples;
  acc.num_uncovered = uncovered;
  acc.total_elements = samples * c + uncovered;
  return acc;
}

TEST(SampleAccountingTest, ValidityChecksInvariant) {
  EXPECT_TRUE(MakeAccounting(10, 4, 40, 0).Valid());
  EXPECT_TRUE(MakeAccounting(10, 4, 40, 7).Valid());
  SampleAccounting bad = MakeAccounting(10, 4, 40, 0);
  bad.total_elements += 1;
  EXPECT_FALSE(bad.Valid());
  bad = MakeAccounting(0, 1, 0, 0);
  EXPECT_FALSE(bad.Valid());
}

TEST(IndexMathTest, PaperFormulaSingleRun) {
  // One run, m = 100, s = 10, c = 10: with r = 1 the slack term vanishes;
  // lower index = floor(psi/c), upper index = ceil(psi/c).
  SampleAccounting acc = MakeAccounting(10, 1, 10, 0);
  for (uint64_t psi = 1; psi <= 100; ++psi) {
    SampleIndex lower = LowerBoundIndex(acc, psi);
    SampleIndex upper = UpperBoundIndex(acc, psi);
    EXPECT_EQ(upper.index, (psi + 9) / 10);
    EXPECT_FALSE(upper.clamped);
    if (psi >= 10) {
      EXPECT_EQ(lower.index, psi / 10);
      EXPECT_FALSE(lower.clamped);
    } else {
      EXPECT_TRUE(lower.clamped);  // no certified lower bound below rank c
    }
  }
}

TEST(IndexMathTest, PaperFormulaMultiRun) {
  // r = 4 runs, c = 10: slack = 3*9 = 27. The lower index is
  // floor((psi - 27)/10) per formula (2).
  SampleAccounting acc = MakeAccounting(10, 4, 40, 0);
  SampleIndex lower = LowerBoundIndex(acc, 200);
  EXPECT_EQ(lower.index, (200 - 27) / 10);
  EXPECT_FALSE(lower.clamped);
  SampleIndex upper = UpperBoundIndex(acc, 200);
  EXPECT_EQ(upper.index, 20u);
}

TEST(IndexMathTest, LowerClampsForSmallPsi) {
  SampleAccounting acc = MakeAccounting(10, 4, 40, 0);
  // psi < c + slack = 10 + 27 = 37 cannot certify a lower bound.
  SampleIndex lower = LowerBoundIndex(acc, 36);
  EXPECT_TRUE(lower.clamped);
  EXPECT_EQ(lower.index, 1u);
  lower = LowerBoundIndex(acc, 37);
  EXPECT_FALSE(lower.clamped);
  EXPECT_EQ(lower.index, 1u);
}

TEST(IndexMathTest, UpperNeverExceedsSampleCount) {
  SampleAccounting acc = MakeAccounting(10, 4, 40, 0);
  SampleIndex upper = UpperBoundIndex(acc, 400);
  EXPECT_EQ(upper.index, 40u);
  EXPECT_FALSE(upper.clamped);
}

TEST(IndexMathTest, UncoveredTailClampsUpper) {
  // 40 samples cover 400 elements; 5 uncovered tail elements mean psi > 400
  // has no certified upper bound.
  SampleAccounting acc = MakeAccounting(10, 5, 40, 5);
  SampleIndex upper = UpperBoundIndex(acc, 405);
  EXPECT_TRUE(upper.clamped);
  EXPECT_EQ(upper.index, 40u);
  upper = UpperBoundIndex(acc, 400);
  EXPECT_FALSE(upper.clamped);
}

TEST(IndexMathTest, MaxRankErrorMatchesLemma) {
  // Lemma 1/2: at most n/s elements of slack. With the paper's divisible
  // setting, c + (r-1)(c-1) <= r*c = n per-run-share... for m=100, s=10,
  // r=4: bound = 10 + 3*9 = 37 <= n/s = 400/10 = 40.
  SampleAccounting acc = MakeAccounting(10, 4, 40, 0);
  EXPECT_EQ(MaxRankError(acc), 37u);
  EXPECT_LE(MaxRankError(acc), acc.total_elements / 10);  // n/s with s=10
}

TEST(IndexMathTest, MaxRankErrorIncludesUncovered) {
  SampleAccounting with = MakeAccounting(10, 4, 40, 6);
  SampleAccounting without = MakeAccounting(10, 4, 40, 0);
  EXPECT_EQ(MaxRankError(with), MaxRankError(without) + 6);
}

TEST(IndexMathTest, SingleSampleListDegenerate) {
  SampleAccounting acc = MakeAccounting(5, 1, 1, 0);  // 5 elements, 1 sample
  SampleIndex upper = UpperBoundIndex(acc, 3);
  EXPECT_EQ(upper.index, 1u);
  SampleIndex lower = LowerBoundIndex(acc, 5);
  EXPECT_EQ(lower.index, 1u);
  EXPECT_FALSE(lower.clamped);
}

// ----------------------------------------------------------- Rank bounds --

TEST(RankBoundsTest, MonotoneInSampleCounts) {
  SampleAccounting acc = MakeAccounting(10, 4, 40, 0);
  RankBounds a = RankBoundsFromSampleCounts(acc, 10, 8);
  RankBounds b = RankBoundsFromSampleCounts(acc, 20, 18);
  EXPECT_LT(a.min_rank_le, b.min_rank_le);
  EXPECT_LT(a.max_rank_lt, b.max_rank_lt);
}

TEST(RankBoundsTest, MatchesPropertyArithmetic) {
  SampleAccounting acc = MakeAccounting(10, 4, 40, 0);
  RankBounds b = RankBoundsFromSampleCounts(acc, 12, 9);
  EXPECT_EQ(b.min_rank_le, 120u);                    // 12 * c
  EXPECT_EQ(b.min_rank_lt, 90u);                     // 9 * c
  EXPECT_EQ(b.max_rank_lt, 90u + 4 * 9);             // + R*(c-1)
  EXPECT_EQ(b.max_rank_le, 120u + 4 * 9);
}

TEST(RankBoundsTest, CappedAtTotalElements) {
  SampleAccounting acc = MakeAccounting(10, 4, 40, 0);
  RankBounds b = RankBoundsFromSampleCounts(acc, 40, 40);
  EXPECT_LE(b.max_rank_le, acc.total_elements);
  EXPECT_LE(b.max_rank_lt, acc.total_elements);
}

// ------------------------------------- Brute-force guarantee verification --
//
// For every (c, r) on a small grid, build an adversarial-ish dataset, run
// the actual regular-sampling pipeline by hand (sort each run, take every
// c-th element), and verify that for EVERY psi the index formulas certify
// true bounds with the promised rank error. This is the proofs-as-tests
// backstop for Lemmas 1-3.

class IndexMathBruteForce
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint64_t, int>> {};

TEST_P(IndexMathBruteForce, FormulasCertifyBoundsForAllPsi) {
  auto [c, r, shape] = GetParam();
  const uint64_t m = c * 4;  // 4 samples per run
  const uint64_t n = m * r;
  // Build data with three shapes: interleaved, blocked, duplicate-heavy.
  std::vector<uint64_t> data(n);
  for (uint64_t i = 0; i < n; ++i) {
    switch (shape) {
      case 0:
        data[i] = i * 2654435761u % (2 * n);  // scrambled
        break;
      case 1:
        data[i] = i;  // sorted: runs cover disjoint ranges
        break;
      default:
        data[i] = i % 7;  // heavy duplicates
    }
  }
  // Regular samples per run of m, sub-run size c.
  std::vector<uint64_t> samples;
  for (uint64_t run = 0; run < r; ++run) {
    std::vector<uint64_t> chunk(data.begin() + run * m,
                                data.begin() + (run + 1) * m);
    std::sort(chunk.begin(), chunk.end());
    for (uint64_t j = c - 1; j < m; j += c) samples.push_back(chunk[j]);
  }
  std::sort(samples.begin(), samples.end());
  std::vector<uint64_t> sorted = data;
  std::sort(sorted.begin(), sorted.end());

  SampleAccounting acc = MakeAccounting(c, r, samples.size(), 0);
  ASSERT_EQ(acc.total_elements, n);
  const uint64_t budget = MaxRankError(acc);

  for (uint64_t psi = 1; psi <= n; ++psi) {
    const uint64_t truth = sorted[psi - 1];
    SampleIndex lower = LowerBoundIndex(acc, psi);
    SampleIndex upper = UpperBoundIndex(acc, psi);
    const uint64_t el = samples[lower.index - 1];
    const uint64_t eu = samples[upper.index - 1];
    if (!lower.clamped) {
      ASSERT_LE(el, truth) << "psi=" << psi << " c=" << c << " r=" << r;
      // Rank distance from the certified lower bound to the target.
      uint64_t rank_le_el = static_cast<uint64_t>(
          std::upper_bound(sorted.begin(), sorted.end(), el) -
          sorted.begin());
      if (psi > rank_le_el) {
        ASSERT_LE(psi - rank_le_el, budget) << "psi=" << psi;
      }
    }
    if (!upper.clamped) {
      ASSERT_GE(eu, truth) << "psi=" << psi << " c=" << c << " r=" << r;
      uint64_t rank_lt_eu = static_cast<uint64_t>(
          std::lower_bound(sorted.begin(), sorted.end(), eu) -
          sorted.begin());
      if (rank_lt_eu > psi) {
        ASSERT_LE(rank_lt_eu - psi, budget) << "psi=" << psi;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, IndexMathBruteForce,
    ::testing::Combine(::testing::Values(uint64_t{1}, uint64_t{2},
                                         uint64_t{5}, uint64_t{8}),
                       ::testing::Values(uint64_t{1}, uint64_t{2},
                                         uint64_t{3}, uint64_t{7}),
                       ::testing::Values(0, 1, 2)),
    [](const auto& info) {
      return "c" + std::to_string(std::get<0>(info.param)) + "_r" +
             std::to_string(std::get<1>(info.param)) + "_shape" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace opaq
