// Tests for the distributed exact-quantile second pass
// (parallel/parallel_exact.h): exact recovery across cluster shapes, error
// paths, and agreement with the sequential second pass.

#include <gtest/gtest.h>

#include <memory>

#include "core/exact.h"
#include "core/opaq.h"
#include "data/dataset.h"
#include "io/faulty_device.h"
#include "metrics/ground_truth.h"
#include "opaq/parallel.h"
#include "opaq/source.h"
#include "parallel/parallel_exact.h"
#include "parallel/parallel_opaq.h"

namespace opaq {
namespace {

struct Shards {
  std::vector<std::unique_ptr<BlockDevice>> devices;
  std::vector<TypedDataFile<uint64_t>> files;
  std::vector<Source<uint64_t>> sources;
  std::vector<uint64_t> union_data;

  Shards(int p, uint64_t per_rank, Distribution dist, uint64_t fail_rank_read)
  {
    for (int r = 0; r < p; ++r) {
      DatasetSpec spec;
      spec.n = per_rank;
      spec.seed = 500 + r;
      spec.distribution = dist;
      auto data = GenerateDataset<uint64_t>(spec);
      union_data.insert(union_data.end(), data.begin(), data.end());
      auto inner = std::make_unique<MemoryBlockDevice>();
      OPAQ_CHECK_OK(WriteDataset(data, inner.get()));
      if (fail_rank_read != 0 && r == 1) {
        FaultyDevice::Options options;
        options.fail_read_at = fail_rank_read;
        devices.push_back(std::make_unique<FaultyDevice>(std::move(inner),
                                                         options));
      } else {
        devices.push_back(std::move(inner));
      }
      auto file = TypedDataFile<uint64_t>::Open(devices.back().get());
      OPAQ_CHECK_OK(file.status());
      files.push_back(std::move(file).value());
    }
    for (auto& f : files) sources.push_back(Source<uint64_t>::FromFile(&f));
  }
};

class ParallelExactTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelExactTest, RecoversExactDectilesAcrossClusterShapes) {
  const int p = GetParam();
  Shards shards(p, 20000, Distribution::kZipf, 0);

  Cluster::Options cluster_options;
  cluster_options.num_processors = p;
  Cluster cluster(cluster_options);
  ParallelOpaqOptions options;
  options.config.run_size = 2000;
  options.config.samples_per_run = 200;

  auto estimate_run = RunParallelOpaq(cluster, shards.sources, options);
  ASSERT_TRUE(estimate_run.ok());
  std::vector<QuantileEstimate<uint64_t>> estimates =
      estimate_run->estimates;
  for (const auto& e : estimates) {
    ASSERT_FALSE(e.lower_clamped);
    ASSERT_FALSE(e.upper_clamped);
  }

  std::vector<uint64_t> exact;
  Status s = cluster.Run([&](ProcessorContext& ctx) -> Status {
    auto result = ParallelExactQuantiles(
        ctx, shards.sources[ctx.rank()], estimates,
        options.config.read_options());
    if (!result.ok()) return result.status();
    if (ctx.rank() == 0) exact = std::move(result).value();
    return Status::OK();
  });
  ASSERT_TRUE(s.ok()) << s.ToString();

  GroundTruth<uint64_t> truth(shards.union_data);
  ASSERT_EQ(exact.size(), 9u);
  for (int d = 1; d <= 9; ++d) {
    EXPECT_EQ(exact[d - 1], truth.Quantile(d / 10.0)) << "p=" << p << " d"
                                                      << d;
  }
}

INSTANTIATE_TEST_SUITE_P(ClusterShapes, ParallelExactTest,
                         ::testing::Values(1, 2, 3, 4, 8),
                         [](const auto& info) {
                           return "p" + std::to_string(info.param);
                         });

TEST(ParallelExactTest2, AgreesWithSequentialSecondPass) {
  Shards shards(1, 30000, Distribution::kUniform, 0);
  Cluster::Options cluster_options;
  cluster_options.num_processors = 1;
  Cluster cluster(cluster_options);
  ParallelOpaqOptions options;
  options.config.run_size = 3000;
  options.config.samples_per_run = 150;
  auto run = RunParallelOpaq(cluster, shards.sources, options);
  ASSERT_TRUE(run.ok());

  auto sequential = ExactQuantilesSecondPass(
      shards.sources[0].provider(), run->estimates,
      options.config.read_options());
  ASSERT_TRUE(sequential.ok());

  std::vector<uint64_t> parallel_exact;
  auto estimates = run->estimates;
  Status s = cluster.Run([&](ProcessorContext& ctx) -> Status {
    auto result = ParallelExactQuantiles(ctx, shards.sources[0], estimates,
                                         options.config.read_options());
    if (!result.ok()) return result.status();
    parallel_exact = std::move(result).value();
    return Status::OK();
  });
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(parallel_exact, *sequential);
}

TEST(ParallelExactTest2, RefusesClampedEstimates) {
  Shards shards(2, 1000, Distribution::kUniform, 0);
  Cluster::Options cluster_options;
  cluster_options.num_processors = 2;
  Cluster cluster(cluster_options);
  QuantileEstimate<uint64_t> clamped;
  clamped.target_rank = 1;
  clamped.lower_clamped = true;
  clamped.max_rank_error = 100;
  Status s = cluster.Run([&](ProcessorContext& ctx) -> Status {
    ReadOptions read_options;
    read_options.run_size = 100;
    auto result = ParallelExactQuantiles(
        ctx, shards.sources[ctx.rank()],
        std::vector<QuantileEstimate<uint64_t>>{clamped}, read_options);
    return result.status();
  });
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(ParallelExactTest2, OneFailingDiskAbortsCleanly) {
  const int p = 4;
  Shards healthy(p, 10000, Distribution::kUniform, 0);
  Cluster::Options cluster_options;
  cluster_options.num_processors = p;
  Cluster cluster(cluster_options);
  ParallelOpaqOptions options;
  options.config.run_size = 1000;
  options.config.samples_per_run = 100;
  auto run = RunParallelOpaq(cluster, healthy.sources, options);
  ASSERT_TRUE(run.ok());

  // Same logical shards, but rank 1's disk dies mid-pass this time.
  Shards faulty(p, 10000, Distribution::kUniform, /*fail_rank_read=*/4);
  auto estimates = run->estimates;
  Status s = cluster.Run([&](ProcessorContext& ctx) -> Status {
    auto result = ParallelExactQuantiles(
        ctx, faulty.sources[ctx.rank()], estimates,
        options.config.read_options());
    return result.status();
  });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace opaq
